"""repro.delta: append-aware relations, delta maintenance, warm re-mining.

The contract under test is *equivalence*: a relation evolved through
``append_rows`` must be indistinguishable — decoded rows, entropies over
arbitrary attribute sets, mined minimal separators and MVDs — from one
built from scratch over the concatenated rows, including when appended
batches grow column dictionaries (the cardinality-jump fallback).  On top
of that, the incremental path must actually be incremental: warm re-mines
must do strictly fewer engine evaluations than cold ones.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.maimon import Maimon
from repro.data.relation import Relation
from repro.delta import (
    DeltaTracker,
    RelationBuilder,
    append_rows,
    chained_fingerprint,
    diff_miner_results,
    diff_payloads,
    diff_schemas_payloads,
    summarize_diff,
)
from repro.entropy.oracle import EntropyOracle
from repro.entropy.partitions import EvolvingPartition, StrippedPartition
from repro.exec.batch import BatchEntropyOracle
from repro.exec.persist import relation_fingerprint
from repro import io as repro_io


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

@st.composite
def row_batches(draw, n_cols=None, alphabet=("a", "b", "c", "d")):
    """A base batch and an append batch over the same columns.

    Values come from a tiny alphabet so appended batches mix repeats of
    known values with genuinely new ones (dictionary growth).
    """
    n = n_cols if n_cols is not None else draw(st.integers(1, 4))
    cell = st.sampled_from(alphabet)
    row = st.tuples(*[cell] * n)
    base = draw(st.lists(row, min_size=0, max_size=12))
    extra = draw(st.lists(row, min_size=0, max_size=8))
    return base, extra


def _columns(n):
    return [f"A{j}" for j in range(n)]


# --------------------------------------------------------------------- #
# Builder: incremental dictionary encoding
# --------------------------------------------------------------------- #

class TestAppendRows:
    @settings(max_examples=60, deadline=None)
    @given(row_batches())
    def test_append_is_code_identical_to_scratch_build(self, batches):
        base_rows, extra = batches
        n = len(base_rows[0]) if base_rows else (len(extra[0]) if extra else 2)
        base = Relation.from_rows(base_rows, _columns(n))
        appended, delta = append_rows(base, extra)
        scratch = Relation.from_rows(base_rows + extra, _columns(n))
        assert appended.rows() == scratch.rows()
        assert np.array_equal(appended.codes, scratch.codes)
        assert appended.domains == scratch.domains
        assert delta.start_row == len(base_rows)
        assert delta.n_rows == len(extra)

    @settings(max_examples=40, deadline=None)
    @given(row_batches())
    def test_append_preserves_content_fingerprint(self, batches):
        """Dense parents: appended == scratch even at the byte level."""
        base_rows, extra = batches
        n = len(base_rows[0]) if base_rows else (len(extra[0]) if extra else 2)
        base = Relation.from_rows(base_rows, _columns(n))
        appended, _ = append_rows(base, extra)
        scratch = Relation.from_rows(base_rows + extra, _columns(n))
        assert relation_fingerprint(appended) == relation_fingerprint(scratch)

    def test_builder_chains_appends_and_deltas(self):
        base = Relation.from_rows([("x", "1")], ["A", "B"])
        builder = RelationBuilder(base)
        r1, d1 = builder.append([("x", "2"), ("y", "1")])
        r2, d2 = builder.append([("z", "3")])
        assert builder.relation is r2
        assert builder.deltas == [d1, d2]
        assert (d1.start_row, d1.n_rows) == (1, 2)
        assert (d2.start_row, d2.n_rows) == (3, 1)
        assert d1.new_domain_counts == (1, 1)  # y and 2 are new
        assert d2.new_domain_counts == (1, 1)  # z and 3 are new
        assert d1.grew_domains and d2.grew_domains
        scratch = Relation.from_rows(
            [("x", "1"), ("x", "2"), ("y", "1"), ("z", "3")], ["A", "B"]
        )
        assert r2.rows() == scratch.rows()

    def test_no_new_values_means_no_domain_growth(self):
        base = Relation.from_rows([("x", "1"), ("y", "2")], ["A", "B"])
        _, delta = append_rows(base, [("y", "1")])
        assert delta.new_domain_counts == (0, 0)
        assert not delta.grew_domains

    def test_arity_mismatch_rejected(self):
        base = Relation.from_rows([("x", "1")], ["A", "B"])
        with pytest.raises(ValueError, match="fields"):
            append_rows(base, [("only-one",)])

    def test_append_to_identity_coded_relation(self):
        """Relations without decode tables get one materialised."""
        base = Relation(np.array([[0, 1], [1, 0]]), ["A", "B"])
        appended, delta = append_rows(base, [(1, 2)])
        assert appended.rows() == [(0, 1), (1, 0), (1, 2)]
        assert delta.new_domain_counts == (0, 1)

    def test_chained_fingerprint_is_order_sensitive(self):
        base = Relation.from_rows([("x",), ("y",)], ["A"])
        _, d1 = append_rows(base, [("z",)])
        _, d2 = append_rows(base, [("w",)])
        fp = relation_fingerprint(base)
        assert d1.child_fingerprint(fp) == chained_fingerprint(fp, d1.digest)
        assert d1.child_fingerprint(fp) != d2.child_fingerprint(fp)
        assert d1.child_fingerprint(fp) != fp


# --------------------------------------------------------------------- #
# EvolvingPartition: incremental stripped-partition maintenance
# --------------------------------------------------------------------- #

class TestEvolvingPartition:
    @settings(max_examples=60, deadline=None)
    @given(row_batches(alphabet=("a", "b", "c")), st.data())
    def test_appended_entropy_is_bit_identical(self, batches, data):
        base_rows, extra = batches
        n = len(base_rows[0]) if base_rows else (len(extra[0]) if extra else 2)
        base = Relation.from_rows(base_rows, _columns(n))
        whole = Relation.from_rows(base_rows + extra, _columns(n))
        attrs = tuple(
            data.draw(
                st.lists(
                    st.integers(0, n - 1), unique=True, min_size=0, max_size=n
                )
            )
        )
        part = EvolvingPartition.build(base, attrs)
        assert part is not None
        if part.append_block(whole.codes[len(base_rows):]):
            expected = StrippedPartition.from_relation(whole, attrs)
            assert part.entropy() == expected.entropy()  # exact, not approx
            assert part.n_rows == whole.n_rows
        else:
            # Fallback demanded: some appended code broke the radix bound.
            rebuilt = EvolvingPartition.build(whole, attrs)
            expected = StrippedPartition.from_relation(whole, attrs)
            assert rebuilt.entropy() == expected.entropy()

    def test_cardinality_jump_forces_fallback(self):
        base = Relation.from_rows([("x",), ("y",)], ["A"])
        appended, _ = append_rows(base, [("brand-new",)])
        part = EvolvingPartition.build(base, (0,))
        assert part.append_block(appended.codes[2:]) is False
        # The partition must be left untouched by the refused append.
        assert part.n_rows == 2

    def test_untrackable_when_radix_product_overflows(self):
        # 8 columns x radix 2^8 => key space 2^64 > the dense-radix bound.
        codes = np.zeros((2, 8), dtype=np.int64)
        codes[1, :] = 255
        rel = Relation(codes, _columns(8))  # raw ctor keeps radix 256
        assert EvolvingPartition.build(rel, tuple(range(8))) is None

    def test_empty_attribute_set(self):
        base = Relation.from_rows([("x",), ("y",)], ["A"])
        part = EvolvingPartition.build(base, ())
        assert part.entropy() == 0.0
        assert part.append_block(np.array([[0]], dtype=np.int64))
        assert part.n_rows == 3
        assert part.entropy() == 0.0


# --------------------------------------------------------------------- #
# Tracker + oracle advance
# --------------------------------------------------------------------- #

class TestDeltaTracking:
    def _mined_pair(self, rows, split, n_cols, eps=0.0):
        columns = _columns(n_cols)
        base = Relation.from_rows(rows[:split], columns)
        whole = Relation.from_rows(rows, columns)
        warm = Maimon(base, track_deltas=True)
        warm.mine_mvds(eps)
        warm.append_rows(rows[split:])
        warm_result = warm.mine_mvds(eps)
        cold = Maimon(whole)
        cold_result = cold.mine_mvds(eps)
        return warm, warm_result, cold, cold_result

    @settings(max_examples=25, deadline=None)
    @given(row_batches(n_cols=3, alphabet=("a", "b")))
    def test_warm_remine_equals_cold_mine(self, batches):
        base_rows, extra = batches
        rows = base_rows + extra
        if not base_rows or not extra:
            return
        warm, warm_result, cold, cold_result = self._mined_pair(
            rows, len(base_rows), 3
        )
        assert warm_result.mvds == cold_result.mvds
        assert warm_result.min_seps == cold_result.min_seps

    def test_oracle_memo_is_patched_not_cleared(self):
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 3, size=(300, 5))
        whole = Relation.from_codes(codes, _columns(5))
        rows = whole.rows()
        base = Relation.from_rows(rows[:250], _columns(5))
        maimon = Maimon(base, track_deltas=True)
        maimon.mine_mvds(0.0)
        evals_before = maimon.oracle.evals
        assert evals_before > 0
        new_rel, delta = append_rows(maimon.relation, rows[250:])
        stats = maimon.advance(new_rel, delta)
        assert stats["patched"] == evals_before  # every memo entry kept
        assert stats["dropped"] == 0
        maimon.mine_mvds(0.0)
        assert maimon.oracle.evals == evals_before  # warm re-mine: 0 new evals
        # Patched values must agree with a fresh oracle on the new data.
        fresh = EntropyOracle(new_rel)
        for mask, value in maimon.oracle._memo.items():
            assert value == fresh.entropy_mask(mask)

    def test_cardinality_jump_rebuilds_only_affected_sets(self):
        base = Relation.from_rows(
            [("a", "x"), ("b", "y"), ("a", "y"), ("b", "x")], ["A", "B"]
        )
        oracle = EntropyOracle(base)
        oracle.enable_delta_tracking()
        oracle.entropy((0,))
        oracle.entropy((1,))
        oracle.entropy((0, 1))
        new_rel, delta = append_rows(base, [("a", "NEW")])  # B's domain grows
        stats = oracle.advance(new_rel, delta)
        # Sets touching B must rebuild; {A} alone patches.
        assert stats["rebuilt"] == 2
        assert stats["patched"] == 1
        fresh = EntropyOracle(new_rel)
        for attrs in [(0,), (1,), (0, 1)]:
            assert oracle.entropy(attrs) == fresh.entropy(attrs)

    def test_advance_without_tracking_invalidates(self):
        base = Relation.from_rows([("a",), ("b",), ("a",)], ["A"])
        oracle = EntropyOracle(base)
        oracle.entropy((0,))
        new_rel, delta = append_rows(base, [("c",)])
        stats = oracle.advance(new_rel, delta)
        assert stats == {"patched": 0, "rebuilt": 0, "dropped": 1}
        assert oracle.entropy((0,)) == EntropyOracle(new_rel).entropy((0,))

    def test_advance_rejects_column_change(self):
        base = Relation.from_rows([("a",)], ["A"])
        other = Relation.from_rows([("a", "b")], ["A", "B"])
        with pytest.raises(ValueError, match="column change"):
            EntropyOracle(base).advance(other)

    def test_tracker_advance_rejects_misaligned_delta(self):
        base = Relation.from_rows([("a",), ("b",)], ["A"])
        tracker = DeltaTracker(base)
        tracker.entropy_of_mask(1)
        new_rel, delta = append_rows(base, [("a",)])
        bigger, delta2 = append_rows(new_rel, [("b",)])
        with pytest.raises(ValueError, match="starts at row"):
            tracker.advance(bigger, delta2)


# --------------------------------------------------------------------- #
# Persist lineage (chained fingerprints on disk)
# --------------------------------------------------------------------- #

class TestPersistLineage:
    def test_advance_forks_cache_along_the_chain(self, tmp_path):
        base = Relation.from_rows(
            [("a", "x"), ("b", "y"), ("a", "y"), ("b", "x")], ["A", "B"],
            name="lineage",
        )
        oracle = BatchEntropyOracle(base, persist=True, cache_dir=str(tmp_path))
        oracle.enable_delta_tracking()
        oracle.entropy((0,))
        oracle.entropy((0, 1))
        parent_fp = oracle._persist.fingerprint
        new_rel, delta = append_rows(base, [("a", "x")])
        oracle.advance(new_rel, delta)
        child = oracle._persist
        assert child.fingerprint == chained_fingerprint(parent_fp, delta.digest)
        assert child.parent == parent_fp
        # The fork is seeded with every patched entropy and flushes with
        # its lineage recorded.
        assert len(child) == 2
        oracle.close()
        import json

        with open(child.path) as f:
            payload = json.load(f)
        assert payload["parent"] == parent_fp
        assert payload["fingerprint"] == child.fingerprint

    def test_patched_values_match_cold_persist_oracle(self, tmp_path):
        base = Relation.from_rows(
            [("a", "x"), ("b", "y"), ("a", "y")], ["A", "B"], name="pv"
        )
        oracle = BatchEntropyOracle(base, persist=True, cache_dir=str(tmp_path))
        oracle.enable_delta_tracking()
        new_rel, delta = append_rows(base, [("b", "x")])
        oracle.entropies([(0,), (1,), (0, 1)])
        oracle.advance(new_rel, delta)
        cold = EntropyOracle(new_rel)
        for attrs in [(0,), (1,), (0, 1)]:
            assert oracle.entropy(attrs) == cold.entropy(attrs)
        oracle.close()


# --------------------------------------------------------------------- #
# Result diffing
# --------------------------------------------------------------------- #

class TestDiffing:
    def _mine_payload(self, rows, columns, eps=0.0):
        maimon = Maimon(Relation.from_rows(rows, columns))
        return repro_io.miner_result_to_dict(maimon.mine_mvds(eps), columns)

    def test_identical_results_diff_empty(self, fig1):
        maimon = Maimon(fig1)
        payload = repro_io.miner_result_to_dict(
            maimon.mine_mvds(0.0), fig1.columns
        )
        diff = diff_miner_results(payload, payload)
        assert not diff["changed"]
        assert diff["mvds"]["n_common"] == len(payload["mvds"])
        assert "mvds: +0 -0" in summarize_diff(diff)

    def test_added_and_dropped_mvds_detected(self):
        cols = ["A", "B", "C", "D"]
        old = self._mine_payload(
            [("a", "x", "1", "p"), ("a", "y", "1", "p"),
             ("b", "x", "2", "q"), ("b", "y", "2", "q")], cols
        )
        new = self._mine_payload(
            [("a", "x", "1", "p"), ("a", "y", "2", "q"),
             ("b", "x", "2", "p"), ("b", "y", "1", "q")], cols
        )
        diff = diff_miner_results(old, new)
        assert diff["changed"]
        reverse = diff_miner_results(new, old)
        assert [m for m in diff["mvds"]["added"]] == reverse["mvds"]["dropped"]

    def test_no_baseline_counts_everything_added(self, fig1):
        payload = self._mine_payload(fig1.rows(), list(fig1.columns))
        diff = diff_miner_results(None, payload)
        assert len(diff["mvds"]["added"]) == len(payload["mvds"])
        assert diff["mvds"]["n_common"] == 0

    def test_schema_shift_detection(self):
        entry = {
            "schema": {"bags": [["A", "B"], ["B", "C"]]},
            "j_measure": 0.0,
            "quality": {"savings_pct": 10.0, "spurious_pct": None},
        }
        moved = {
            "schema": {"bags": [["B", "C"], ["A", "B"]]},  # same bags, reordered
            "j_measure": 0.25,
            "quality": {"savings_pct": 10.0, "spurious_pct": None},
        }
        other = {
            "schema": {"bags": [["A", "C"], ["C", "B"]]},
            "j_measure": 0.0,
            "quality": {"savings_pct": 5.0, "spurious_pct": None},
        }
        diff = diff_schemas_payloads(
            {"schemas": [entry]}, {"schemas": [moved, other]}
        )
        assert len(diff["schemas"]["added"]) == 1
        assert len(diff["schemas"]["shifted"]) == 1
        assert diff["schemas"]["shifted"][0]["scores"]["j_measure"] == {
            "old": 0.0, "new": 0.25,
        }
        assert "schemas: +1" in summarize_diff(diff)

    def test_dispatch(self):
        assert diff_payloads(None, {"mvds": [], "min_seps": []})["kind"] == "mine"
        assert diff_payloads(None, {"schemas": []})["kind"] == "schemas"
        with pytest.raises(ValueError, match="unrecognised"):
            diff_payloads(None, {"something": 1})

    def test_mixed_kinds_rejected(self):
        with pytest.raises(ValueError, match="different kinds"):
            diff_payloads({"mvds": [], "min_seps": []}, {"schemas": []})
        with pytest.raises(ValueError, match="different kinds"):
            diff_payloads({"schemas": []}, {"mvds": [], "min_seps": []})


# --------------------------------------------------------------------- #
# End-to-end acceptance: warm serve append == cold mine, fewer evals
# --------------------------------------------------------------------- #

class TestEndToEndIncrement:
    def test_serve_append_remine_byte_identical_to_cold_mine(self):
        from repro.data.generators import markov_tree
        from repro.serve import MiningService

        surrogate = markov_tree(6, 700, seed=11, name="evolve")
        rows = [[str(v) for v in row] for row in surrogate.rows()]
        columns = list(surrogate.columns)
        split = 550

        with MiningService(max_request_seconds=60) as service:
            base = service.registry.add_rows(rows[:split], columns, name="evolve")
            first = service.submit_mine({"dataset_id": base.dataset_id, "eps": 0.0})
            service.jobs.wait(first.id, timeout=60)
            assert first.status == "done"

            job = service.submit_append(
                {"rows": rows[split:], "eps": 0.0}, dataset_id=base.dataset_id
            )
            service.jobs.wait(job.id, timeout=60)
            assert job.status == "done", job.error
            warm = job.result
            assert warm["advance"]["warm_session"] is True
            assert warm["advance"]["patched"] > 0
            assert warm["diff"] is not None and warm["diff"]["kind"] == "mine"
            assert warm["parent_id"] == base.dataset_id

            # Cold mine of the concatenated dataset, same service machinery.
            cold_entry = service.registry.add_rows(rows, columns, name="evolve2")
            cold_job = service.submit_mine(
                {"dataset_id": cold_entry.dataset_id, "eps": 0.0}
            )
            service.jobs.wait(cold_job.id, timeout=60)
            assert cold_job.status == "done"

            # Byte-identical artefacts (entropy_queries/evals/elapsed are
            # run-dependent instrumentation, not mined content).
            content = ("eps", "mvds", "min_seps", "timed_out",
                       "pairs_done", "pairs_total")
            for key in content:
                assert warm["result"][key] == cold_job.result[key]
            import json

            assert json.dumps(
                {k: warm["result"][k] for k in ("mvds", "min_seps")},
                sort_keys=True,
            ) == json.dumps(
                {k: cold_job.result[k] for k in ("mvds", "min_seps")},
                sort_keys=True,
            )
            # Strictly fewer engine evals on the incremental path.
            assert warm["result"]["entropy_evals"] < cold_job.result["entropy_evals"]

    def test_maimon_append_with_domain_growth_matches_cold(self):
        cols = ["A", "B", "C"]
        base_rows = [("a", "x", "1"), ("b", "y", "2"), ("a", "y", "1")]
        extra = [("c", "x", "3"), ("a", "z", "1")]  # every column grows
        warm = Maimon(Relation.from_rows(base_rows, cols), track_deltas=True)
        warm.mine_mvds(0.0)
        delta = warm.append_rows(extra)
        assert delta.grew_domains
        warm_result = warm.mine_mvds(0.0)
        cold = Maimon(Relation.from_rows(base_rows + extra, cols))
        cold_result = cold.mine_mvds(0.0)
        assert warm_result.mvds == cold_result.mvds
        assert warm_result.min_seps == cold_result.min_seps
