"""Tests for unique column combination discovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.relation import Relation
from repro.fd.ucc import UCC, brute_force_uccs, is_ucc, mine_uccs, ucc_error
from tests.conftest import random_relation


@pytest.fixture
def keyed_relation():
    """Column a is a key; (b, c) jointly unique; nothing smaller."""
    rows = [
        (0, 0, 0),
        (1, 0, 1),
        (2, 1, 0),
        (3, 1, 1),
    ]
    return Relation.from_rows(rows, ["a", "b", "c"])


class TestErrorAndPredicate:
    def test_exact_key(self, keyed_relation):
        assert ucc_error(keyed_relation, [0]) == 0.0
        assert is_ucc(keyed_relation, [0])

    def test_non_key(self, keyed_relation):
        assert ucc_error(keyed_relation, [1]) == pytest.approx(0.5)
        assert not is_ucc(keyed_relation, [1])
        assert is_ucc(keyed_relation, [1], error=0.5)

    def test_empty_set(self, keyed_relation):
        # The empty set groups everything together: error (N-1)/N.
        assert ucc_error(keyed_relation, []) == pytest.approx(3 / 4)

    def test_empty_relation(self):
        import numpy as np

        r = Relation(np.zeros((0, 2), dtype=np.int64), ["a", "b"])
        assert ucc_error(r, [0]) == 0.0


class TestMineUccs:
    def test_keyed_relation(self, keyed_relation):
        uccs = {u.attrs for u in mine_uccs(keyed_relation)}
        assert frozenset({0}) in uccs
        assert frozenset({1, 2}) in uccs
        # Non-minimal supersets of {a} must not appear.
        assert frozenset({0, 1}) not in uccs

    def test_no_ucc_when_duplicates(self):
        r = Relation.from_rows([(1, 1), (1, 1)], ["a", "b"])
        assert mine_uccs(r) == []
        # ...but an approximate one exists at error 1/2.
        uccs = mine_uccs(r, error=0.5)
        assert UCC(frozenset(), 0.5) in uccs

    def test_max_size(self, keyed_relation):
        uccs = mine_uccs(keyed_relation, max_size=1)
        assert all(len(u.attrs) <= 1 for u in uccs)

    def test_matches_brute_force_examples(self):
        for seed in (0, 3, 8):
            r = random_relation(4, 20, seed=seed)
            got = {(u.attrs, round(u.error, 9)) for u in mine_uccs(r)}
            expected = {(u.attrs, round(u.error, 9)) for u in brute_force_uccs(r)}
            assert got == expected, f"seed {seed}"

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 4000), error=st.sampled_from([0.0, 0.1, 0.3]))
    def test_matches_brute_force_property(self, seed, error):
        r = random_relation(4, 15, seed=seed)
        got = {u.attrs for u in mine_uccs(r, error=error)}
        expected = {u.attrs for u in brute_force_uccs(r, error=error)}
        assert got == expected

    def test_format(self):
        u = UCC(frozenset({0, 2}))
        assert u.format("abc") == "{a,c}"
        assert u.format() == "{0,2}"


class TestRelationToEntropy:
    def test_ucc_iff_full_entropy(self, keyed_relation):
        """X is an exact UCC iff H(X) = log2(N) (distinct rows)."""
        import math

        from repro.entropy.oracle import make_oracle

        o = make_oracle(keyed_relation)
        n = keyed_relation.n_rows
        for attrs in ([0], [1], [2], [1, 2], [0, 1]):
            expected = is_ucc(keyed_relation, attrs)
            holds = o.entropy(attrs) >= math.log2(n) - 1e-9
            assert holds == expected, attrs
