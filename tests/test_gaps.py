"""Targeted tests for code paths not exercised elsewhere."""

import numpy as np
import pytest

from repro.core.budget import SearchBudget
from repro.core.schema import Schema
from repro.data.relation import Relation
from repro.entropy.estimators import jackknife_entropy
from repro.quality.spurious import materialized_join_rows
from repro.quality.yannakakis import DecomposedBags, iter_join_rows
from tests.conftest import random_relation


def fs(*xs):
    return frozenset(xs)


class TestIterJoinRowsUnreduced:
    def test_reduce_flag_equivalence(self):
        """Skipping the full reducer must not change the join result, only
        the amount of dead-end backtracking."""
        r = random_relation(4, 25, seed=77)
        schema = Schema([fs(0, 1), fs(1, 2), fs(2, 3)])
        reduced = set(iter_join_rows(DecomposedBags(r, schema), reduce_first=True))
        unreduced = set(iter_join_rows(DecomposedBags(r, schema), reduce_first=False))
        assert reduced == unreduced == materialized_join_rows(r, schema)

    def test_single_bag(self):
        r = random_relation(3, 10, seed=1)
        bags = DecomposedBags(r, Schema([fs(0, 1, 2)]))
        rows = set(iter_join_rows(bags))
        assert rows == r.row_set()


class TestBudgetCombination:
    def test_steps_and_seconds_combined(self):
        b = SearchBudget(max_seconds=100.0, max_steps=2).start()
        assert not b.exhausted
        b.tick(2)
        assert b.exhausted  # steps trip first even with time remaining

    def test_elapsed_monotone(self):
        b = SearchBudget(max_seconds=100.0).start()
        e1 = b.elapsed
        e2 = b.elapsed
        assert e2 >= e1 >= 0.0


class TestJackknifeTinyCases:
    def test_two_rows(self):
        # Two distinct singletons: H_mle = 1 bit; jackknife stays finite.
        h = jackknife_entropy(np.array([1, 1]), 2)
        assert np.isfinite(h)
        assert h >= 0.0

    def test_single_cluster(self):
        assert jackknife_entropy(np.array([4]), 4) == pytest.approx(0.0, abs=1e-9)


class TestRelationMisc:
    def test_pretty_within_limit(self):
        r = Relation.from_rows([(1, 2)], ["a", "b"])
        text = r.pretty(limit=10)
        assert "more rows" not in text

    def test_cardinality_by_name(self, fig1):
        assert fig1.cardinality("A") == 2
        assert fig1.cardinality("E") == 3

    def test_select_columns_keeps_duplicates(self, fig1):
        sel = fig1.select_columns(["A"])
        assert sel.n_rows == fig1.n_rows


class TestSchemaDunderEdges:
    def test_schema_neq_other_type(self):
        assert Schema([fs(0)]) != 42

    def test_join_tree_not_equal_other_type(self):
        from repro.core.jointree import JoinTree

        jt = JoinTree([fs(0, 1)], [])
        assert jt != "tree"


class TestCliProfileDatasetSource:
    def test_profile_on_builtin(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "profile",
                    "--dataset",
                    "Abalone",
                    "--scale",
                    "0.05",
                    "--fd-lhs",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Column profile" in out
