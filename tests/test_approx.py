"""repro.approx: sampler determinism, interval coverage, escalation parity.

Three layers of assurance, mirroring the subsystem's structure:

* the **sampler** is deterministic, cached per relation fingerprint, and
  stratified allocation is proportional;
* the **bounds** cover the exact (full-relation) entropy / measure at no
  less than the stated confidence, measured empirically over many seeds
  (the statistical guarantee the engine's sample-side decisions rest on);
* the **engine** reproduces the exact miner's output bit-for-bit on the
  Table 2 surrogates — *with a deliberately small sample*, so the parity
  comes from escalation actually firing, not from the sample being the
  whole relation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approx.bounds import (
    bias_allowance,
    combine_interval,
    decision_interval,
    deviation_radius,
    entropy_interval,
)
from repro.approx.engine import ApproxEntropyEngine
from repro.approx.sampler import clear_sample_cache, get_sample, stratified_sample
from repro.core.maimon import Maimon
from repro.api.specs import EngineSpec
from repro.data import datasets
from repro.data.generators import markov_tree
from repro.entropy.estimators import EntropySample, sample_moments
from repro.entropy.oracle import make_oracle
from repro.lattice import attrset

from conftest import random_relation


# --------------------------------------------------------------------- #
# Sampler
# --------------------------------------------------------------------- #


class TestSampler:
    def setup_method(self):
        clear_sample_cache()

    def test_deterministic_and_cached(self):
        r = random_relation(4, 500, seed=3)
        a = get_sample(r, 100, seed=5)
        b = get_sample(r, 100, seed=5)
        assert a is b  # cache hit: same materialised object
        clear_sample_cache()
        c = get_sample(r, 100, seed=5)
        assert c is not a
        assert (c.codes == a.codes).all()  # but identical content

    def test_cache_keys_are_content_and_knobs(self):
        r = random_relation(4, 500, seed=3)
        same_content = r.take_rows(np.arange(r.n_rows))
        assert get_sample(r, 100, seed=5) is get_sample(same_content, 100, seed=5)
        assert get_sample(r, 100, seed=5) is not get_sample(r, 100, seed=6)
        assert get_sample(r, 100, seed=5) is not get_sample(r, 101, seed=5)

    def test_full_sample_is_copy(self):
        r = random_relation(3, 50, seed=1)
        s = get_sample(r, 500, seed=0)
        assert s is not r and s.n_rows == r.n_rows

    def test_stratified_proportional(self):
        # One dominant column value (~90%): proportional allocation must
        # keep roughly that share, and the draw must stay deterministic.
        rng = np.random.default_rng(0)
        col0 = (rng.random(2000) < 0.9).astype(np.int64)
        col1 = rng.integers(0, 50, size=2000)
        codes = np.stack([col0, col1], axis=1)
        from repro.data.relation import Relation

        r = Relation(codes, ["a", "b"], domains=None)
        s = stratified_sample(r, 200, seed=4, column=0)
        assert s.n_rows == 200
        share = (s.codes[:, 0] == col0.max()).mean()
        full_share = (col0 == col0.max()).mean()
        assert abs(share - full_share) < 0.02  # proportional, not lucky
        s2 = stratified_sample(r, 200, seed=4, column=0)
        assert (s.codes == s2.codes).all()

    def test_unknown_method_rejected(self):
        r = random_relation(3, 50, seed=1)
        with pytest.raises(ValueError, match="method"):
            get_sample(r, 10, method="bogus")


# --------------------------------------------------------------------- #
# Bounds: structural properties
# --------------------------------------------------------------------- #


entropy_samples = st.builds(
    EntropySample,
    value=st.floats(0.0, 20.0),
    h_mle=st.floats(0.0, 20.0),
    support=st.integers(1, 10_000),
    n=st.integers(2, 1_000_000),
    var=st.floats(0.0, 50.0),
)


class TestBoundsProperties:
    @given(entropy_samples, st.floats(1e-6, 0.5), st.floats(1e-6, 0.5))
    @settings(max_examples=100, deadline=None)
    def test_radius_monotone_in_delta(self, s, d1, d2):
        lo_d, hi_d = sorted((d1, d2))
        for method in ("clt", "mcdiarmid"):
            # Smaller failure probability -> wider radius.
            assert deviation_radius(s, lo_d, method) >= deviation_radius(
                s, hi_d, method
            )

    @given(entropy_samples)
    @settings(max_examples=100, deadline=None)
    def test_bias_allowance_nonnegative_and_shrinks_in_n(self, s):
        b = bias_allowance(s)
        assert b >= 0.0
        bigger = EntropySample(s.value, s.h_mle, s.support, s.n * 2, s.var)
        assert bias_allowance(bigger) <= b

    @given(st.lists(st.tuples(entropy_samples, st.floats(-3, 3)), max_size=5),
           st.floats(1e-4, 0.5))
    @settings(max_examples=100, deadline=None)
    def test_combine_contains_point_estimate(self, terms, delta):
        lo, hi = combine_interval(terms, delta)
        est = sum(c * s.value for s, c in terms)
        assert lo <= est + 1e-9 and est - 1e-9 <= hi

    @given(entropy_samples, st.floats(1e-4, 0.5))
    @settings(max_examples=100, deadline=None)
    def test_entropy_interval_ordered_and_clamped(self, s, delta):
        lo, hi = entropy_interval(s, delta)
        assert 0.0 <= lo <= hi

    @given(st.floats(0, 10), st.floats(0, 20), st.integers(2, 10**6),
           st.floats(-1, 1), st.floats(1e-4, 0.5))
    @settings(max_examples=100, deadline=None)
    def test_decision_interval_centres_on_corrected_estimate(
        self, est, var, n, mm, delta
    ):
        lo, hi = decision_interval(est, var, n, mm, delta)
        assert lo <= est + mm <= hi
        # Tightening confidence (smaller delta) can only widen it.
        lo2, hi2 = decision_interval(est, var, n, mm, delta / 2)
        assert lo2 <= lo and hi2 >= hi

    def test_bad_delta_rejected(self):
        s = EntropySample(1.0, 1.0, 4, 100, 1.0)
        with pytest.raises(ValueError, match="delta"):
            combine_interval([(s, 1.0)], 0.0)
        with pytest.raises(ValueError, match="method"):
            deviation_radius(s, 0.1, method="bogus")


# --------------------------------------------------------------------- #
# Bounds: empirical coverage of the exact value
# --------------------------------------------------------------------- #


class TestCoverage:
    CONFIDENCE = 0.90

    def test_entropy_interval_covers_exact(self):
        """Per-term H intervals cover the full-relation entropy >= 1-delta.

        200 independent (relation, sample-seed) draws; the empirical
        coverage rate must not undershoot the stated confidence by more
        than binomial noise (3 sigma ~ 0.06 at n=200, p=0.9).
        """
        delta = 1.0 - self.CONFIDENCE
        hits = trials = 0
        for seed in range(40):
            full = random_relation(4, 4000, seed=seed, max_domain=4)
            for sample_seed in range(5):
                sub = full.sample_rows(400, seed=sample_seed)
                for attrs in ({0, 1}, {0, 1, 2, 3}):
                    exact = make_oracle(full).entropy(attrs)
                    counts = sub.group_sizes(attrset(attrs))
                    s = sample_moments(counts, sub.n_rows)
                    lo, hi = entropy_interval(s, delta)
                    trials += 1
                    hits += lo - 1e-9 <= exact <= hi + 1e-9
        assert hits / trials >= self.CONFIDENCE - 0.06, (hits, trials)

    def test_decision_interval_covers_exact_mi(self):
        """Combination intervals cover the exact I(Y;Z|X) >= 1-delta."""
        delta = 1.0 - self.CONFIDENCE
        hits = trials = 0
        for seed in range(25):
            full = markov_tree(5, 5000, seed=seed, domain_size=3,
                               fd_fraction=0.4, determinism=0.9)
            exact = make_oracle(full)
            for sample_seed in range(4):
                engine = ApproxEntropyEngine(
                    full, sample_rows=500, confidence=self.CONFIDENCE,
                    sample_seed=sample_seed,
                )
                for (ys, zs, xs) in (({0}, {1}, {2}), ({3}, {4}, {0, 1})):
                    true_mi = exact.mutual_information(ys, zs, xs)
                    ym = attrset(ys).mask
                    zm = attrset(zs).mask
                    xm = attrset(xs).mask
                    lo, hi = engine._interval([
                        (xm | ym, 1.0), (xm | zm, 1.0),
                        (xm | ym | zm, -1.0), (xm, -1.0),
                    ])
                    trials += 1
                    hits += lo - 1e-9 <= true_mi <= hi + 1e-9
        assert hits / trials >= self.CONFIDENCE - 0.07, (hits, trials)


# --------------------------------------------------------------------- #
# Engine mechanics
# --------------------------------------------------------------------- #


class TestEngine:
    def test_exhaustive_sample_never_escalates(self):
        r = random_relation(4, 200, seed=2)
        eng = ApproxEntropyEngine(r, sample_rows=10_000)
        exact = make_oracle(r)
        for eps in (0.0, 0.05, 0.5):
            got = eng.mis_exceed([({0}, {1}, {2}), ({0}, {2}, ())], eps)
            want = exact.mis_exceed([({0}, {1}, {2}), ({0}, {2}, ())], eps)
            assert got == want
        assert eng.escalations == 0
        assert eng.exact_evals == 0

    def test_query_accounting_matches_exact_oracle(self):
        r = random_relation(4, 400, seed=5)
        eng = ApproxEntropyEngine(r, sample_rows=100)
        exact = make_oracle(r)
        triples = [({0}, {1}, {2}), ({1}, {3}, {0})]
        eng.mis_exceed(triples, 0.01)
        exact.mis_exceed(triples, 0.01)
        assert eng.queries == exact.queries  # 4 logical H's per decision

    def test_point_values_come_from_the_sample(self):
        r = random_relation(4, 1000, seed=6)
        eng = ApproxEntropyEngine(r, sample_rows=100, sample_seed=1)
        sampled = make_oracle(eng.sample)
        assert eng.entropy({0, 1}) == pytest.approx(sampled.entropy({0, 1}))

    def test_escalation_counter_and_exact_tier(self):
        r = markov_tree(5, 3000, seed=11, domain_size=3)
        eng = ApproxEntropyEngine(r, sample_rows=60, sample_seed=0)
        exact = make_oracle(r)
        triples = [
            ({a}, {b}, set(range(5)) - {a, b})
            for a in range(5) for b in range(a + 1, 5)
        ]
        got = eng.mis_exceed(triples, 0.0)
        want = exact.mis_exceed(triples, 0.0)
        assert got == want  # escalation preserves the exact verdicts
        assert eng.escalations > 0  # tiny sample: boundary cases exist
        assert eng.exact_evals > 0

    def test_saturated_sample_escalates(self):
        """Near-unique rows: the sample cannot certify any decision (the
        paper's N1 obstacle), so the saturation guard must escalate every
        comparison instead of trusting a degenerate interval."""
        r = random_relation(4, 300, seed=12, max_domain=50)
        eng = ApproxEntropyEngine(r, sample_rows=80, confidence=0.9)
        exact = make_oracle(r)
        triples = [({0}, {1}, {2}), ({1}, {2}, {3})]
        got = eng.mis_exceed(triples, 0.05)
        assert got == exact.mis_exceed(triples, 0.05)
        assert eng.escalations == len(triples)

    def test_delta_tracking_declined(self):
        r = random_relation(3, 100, seed=7)
        eng = ApproxEntropyEngine(r, sample_rows=10)
        eng.enable_delta_tracking()
        assert not eng.tracks_deltas

    def test_advance_resamples_and_resets(self):
        full = random_relation(3, 400, seed=8)
        head = full.head(200)
        eng = ApproxEntropyEngine(head, sample_rows=50, sample_seed=2)
        eng.entropy({0, 1})
        old_sample = eng.sample
        stats = eng.advance(full)
        assert stats["dropped"] >= 1
        assert eng.sample is not old_sample
        assert eng.relation is full
        fresh = ApproxEntropyEngine(full, sample_rows=50, sample_seed=2)
        assert eng.entropy({0, 1}) == pytest.approx(fresh.entropy({0, 1}))

    def test_constructor_validation(self):
        r = random_relation(3, 50, seed=9)
        with pytest.raises(ValueError, match="confidence"):
            ApproxEntropyEngine(r, confidence=1.5)
        with pytest.raises(ValueError, match="sample_rows"):
            ApproxEntropyEngine(r, sample_rows=0)
        with pytest.raises(ValueError, match="bound"):
            ApproxEntropyEngine(r, bound="bogus")


# --------------------------------------------------------------------- #
# Golden parity on the Table 2 surrogates
# --------------------------------------------------------------------- #


class TestGoldenParity:
    @pytest.mark.parametrize("name,eps", [
        ("Bridges", 0.1),
        ("Breast_Cancer", 0.05),
        ("Abalone", 0.1),
    ])
    def test_minsep_and_mvd_parity_with_small_sample(self, name, eps):
        """engine='approx' with a *small* sample reproduces exact mining.

        sample_rows is far below the relation size, so agreement cannot
        come from the sample covering the data — the interval logic (and,
        at these tiny samples, the saturation guard: supports approach the
        sample size, so most decisions are not sample-certifiable) must
        route boundary decisions to escalation.  The nonzero escalation
        counter asserts the exact tier really was exercised.  Columns are
        capped because *exact* full-MVD search at these ε values blows up
        combinatorially on the wide surrogates — a property of the search
        space, not of sampling.
        """
        relation = datasets.load(name, scale=1.0, max_rows=1200, max_cols=7)
        exact = Maimon(relation)
        want = exact.mine_mvds(eps)
        approx = Maimon(relation, spec=EngineSpec(
            engine="approx", sample_rows=max(60, relation.n_rows // 10),
            confidence=0.9,
        ))
        got = approx.mine_mvds(eps)
        assert sorted(want.mvds) == sorted(got.mvds)
        assert {p: sorted(v) for p, v in want.min_seps.items()} == \
               {p: sorted(v) for p, v in got.min_seps.items()}
        counters = approx.counters()
        assert counters["approx.escalations"] > 0
        assert counters["approx.exact_evals"] > 0
