"""Tests for the Table 2 dataset registry."""

import pytest

from repro.data import datasets


class TestRegistry:
    def test_twenty_specs(self):
        assert len(datasets.TABLE2) == 20

    def test_names_unique(self):
        names = [s.name for s in datasets.TABLE2]
        assert len(set(names)) == 20

    def test_spec_lookup_case_insensitive(self):
        assert datasets.spec("abalone").n_cols == 9
        assert datasets.spec("ABALONE").n_rows == 4177

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            datasets.spec("nope")

    def test_names_helper(self):
        names = datasets.names()
        assert "nursery" in names
        assert len(names) == 21

    def test_paper_shapes_recorded(self):
        # Spot-check the column/row counts from Table 2.
        by_name = {s.name: s for s in datasets.TABLE2}
        assert by_name["Census"].n_cols == 42
        assert by_name["Voter_State"].n_cols == 45
        assert by_name["Ditag_Feature"].n_rows == 3_960_124
        assert by_name["Bridges"].n_rows == 108


class TestLoad:
    def test_scaled_load(self):
        r = datasets.load("Bridges", scale=1.0)
        assert r.n_rows == 108
        assert r.n_cols == 13
        assert r.name == "Bridges"

    def test_scale_and_caps(self):
        r = datasets.load("Census", scale=0.001, max_rows=150, max_cols=8)
        assert r.n_rows <= 150
        assert r.n_cols == 8

    def test_minimum_rows(self):
        r = datasets.load("Hepatitis", scale=0.0001)
        assert r.n_rows >= 32

    def test_deterministic(self):
        r1 = datasets.load("Adult", max_rows=100)
        r2 = datasets.load("Adult", max_rows=100)
        assert r1.rows() == r2.rows()

    def test_nursery_passthrough(self):
        r = datasets.load("nursery", max_rows=500)
        assert r.n_rows == 500
        assert r.n_cols == 9

    def test_profiles_differ(self):
        fd = datasets.load("FD_Reduced_15", max_rows=200)
        wide = datasets.load("Census", max_rows=200, max_cols=15)
        assert fd.rows() != wide.rows()
