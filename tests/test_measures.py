"""Tests for the J-measure: paper identities, Shannon inequalities, Lee."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import TOL
from repro.core.jointree import JoinTree
from repro.core.measures import j_measure, j_of_join_tree, j_of_schema, satisfies
from repro.core.mvd import MVD
from repro.entropy.oracle import make_oracle
from repro.reference import j_by_counting
from tests.conftest import random_relation

A, B, C, D, E, F = range(6)

FIG1_BAGS = [
    frozenset({A, F}),
    frozenset({A, C, D}),
    frozenset({A, B, D}),
    frozenset({B, D, E}),
]


class TestPaperValues:
    def test_fig1_join_tree_j_zero(self, fig1_oracle):
        jt = JoinTree.from_bags(FIG1_BAGS)
        assert jt.j_measure(fig1_oracle) == pytest.approx(0.0, abs=TOL)

    def test_fig1_support_mvds_hold(self, fig1_oracle):
        for m in (
            MVD({B, D}, [{E}, {A, C, F}]),
            MVD({A, D}, [{C, F}, {B, E}]),
            MVD({A}, [{F}, {B, C, D, E}]),
        ):
            assert satisfies(fig1_oracle, m, 0.0)

    def test_red_tuple_breaks_bd_mvd(self, fig1_red_oracle):
        # With the red tuple, BD ->> E | ACF no longer holds...
        assert not satisfies(fig1_red_oracle, MVD({B, D}, [{E}, {A, C, F}]), 0.0)
        # ...while A ->> F | BCDE still does (paper, Section 2).
        assert satisfies(fig1_red_oracle, MVD({A}, [{F}, {B, C, D, E}]), 0.0)

    def test_red_tuple_breaks_schema(self, fig1_red_oracle):
        jt = JoinTree.from_bags(FIG1_BAGS)
        assert jt.j_measure(fig1_red_oracle) > 0.01

    def test_lemma54_values(self, lemma54_oracle):
        # Section 5.2: J(X->>AB|C) = J(X->>AC|B) = J(X->>BC|A) = 1,
        # J(X->>A|B|C) = 2 (attributes X A B C = 0 1 2 3).
        o = lemma54_oracle
        assert j_measure(o, MVD({0}, [{1, 2}, {3}])) == pytest.approx(1.0)
        assert j_measure(o, MVD({0}, [{1, 3}, {2}])) == pytest.approx(1.0)
        assert j_measure(o, MVD({0}, [{2, 3}, {1}])) == pytest.approx(1.0)
        assert j_measure(o, MVD({0}, [{1}, {2}, {3}])) == pytest.approx(2.0)

    def test_standard_mvd_j_is_cmi(self, fig1_oracle):
        m = MVD({A, D}, [{C, F}, {B, E}])
        assert j_measure(fig1_oracle, m) == pytest.approx(
            fig1_oracle.mutual_information({C, F}, {B, E}, {A, D}), abs=1e-12
        )


class TestAgainstReference:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_j_matches_counting(self, seed):
        r = random_relation(5, 30, seed=seed)
        o = make_oracle(r)
        m = MVD({0}, [{1, 2}, {3}, {4}])
        assert j_measure(o, m) == pytest.approx(j_by_counting(r, m), abs=1e-9)


class TestShannonProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_j_nonnegative(self, seed):
        r = random_relation(4, 25, seed=seed)
        o = make_oracle(r)
        for m in (
            MVD(set(), [{0}, {1}, {2}, {3}]),
            MVD({0}, [{1}, {2, 3}]),
            MVD({0, 1}, [{2}, {3}]),
        ):
            assert j_measure(o, m) >= -TOL

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_refinement_increases_j(self, seed):
        """Proposition 5.2: phi >= psi implies J(phi) >= J(psi)."""
        r = random_relation(5, 25, seed=seed)
        o = make_oracle(r)
        fine = MVD({0}, [{1}, {2}, {3}, {4}])
        for coarse in (
            MVD({0}, [{1, 2}, {3}, {4}]),
            MVD({0}, [{1, 2, 3}, {4}]),
            MVD({0}, [{1, 4}, {2, 3}]),
        ):
            assert fine.refines(coarse)
            assert j_measure(o, fine) >= j_measure(o, coarse) - TOL

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_lemma_54_inequalities(self, seed):
        """J(phi v psi) <= J(phi) + m*J(psi) and <= k*J(phi) + J(psi)."""
        r = random_relation(5, 25, seed=seed)
        o = make_oracle(r)
        phi = MVD({0}, [{1, 2}, {3, 4}])
        psi = MVD({0}, [{1, 3}, {2, 4}])
        join = phi.join(psi)
        j_phi, j_psi, j_join = (j_measure(o, x) for x in (phi, psi, join))
        m, k = phi.m, psi.m
        assert j_join <= j_phi + m * j_psi + TOL
        assert j_join <= k * j_phi + j_psi + TOL
        assert j_join >= max(j_phi, j_psi) - TOL  # join refines both

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_key_growth_decreases_j(self, seed):
        """Proposition 5.1 Eq. (8): moving attrs into the key lowers J."""
        r = random_relation(5, 25, seed=seed)
        o = make_oracle(r)
        wide = MVD({0}, [{1, 2}, {3, 4}])  # X ->> Y1 Z1 | Y2 Z2
        narrow = MVD({0, 2, 4}, [{1}, {3}])  # X Z1 Z2 ->> Y1 | Y2
        assert j_measure(o, narrow) <= j_measure(o, wide) + TOL

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_theorem_51_identity_and_bounds(self, seed):
        """Eq. (9): J(T) = sum of I terms; Eq. (10): max <= J <= sum."""
        r = random_relation(5, 25, seed=seed)
        o = make_oracle(r)
        bags = [frozenset({0, 1}), frozenset({1, 2, 3}), frozenset({3, 4})]
        edges = [(0, 1), (1, 2)]
        j = j_of_join_tree(o, bags, edges)
        # Depth-first order u1=0, u2=1, u3=2; Delta_2 = {1}, Delta_3 = {3}.
        term2 = o.mutual_information(bags[0], bags[1], bags[0] & bags[1])
        term3 = o.mutual_information(bags[0] | bags[1], bags[2], bags[1] & bags[2])
        assert j == pytest.approx(term2 + term3, abs=1e-9)
        # Support-MVD bounds: the support terms include *all* attributes.
        omega = frozenset(range(5))
        sup2 = o.mutual_information(bags[0] - {1}, omega - bags[0], {1})
        sup3 = o.mutual_information(omega - {4} - {3}, {4}, {3})
        assert j <= sup2 + sup3 + TOL
        assert j >= max(sup2, sup3) - TOL


class TestJOfSchema:
    def test_tree_independence(self, fig1_oracle):
        """Lee: J depends only on the schema, not the join tree chosen."""
        bags = [frozenset({A, B}), frozenset({A, C}), frozenset({A, D})]
        j_star1 = j_of_join_tree(fig1_oracle, bags, [(0, 1), (1, 2)])
        j_star2 = j_of_join_tree(fig1_oracle, bags, [(0, 1), (0, 2)])
        assert j_star1 == pytest.approx(j_star2, abs=1e-9)
        assert j_of_schema(fig1_oracle, bags) == pytest.approx(j_star1, abs=1e-9)

    def test_single_bag_schema(self, fig1_oracle):
        assert j_of_schema(fig1_oracle, [frozenset(range(6))]) == 0.0

    def test_cyclic_schema_rejected(self, fig1_oracle):
        cyclic = [frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})]
        with pytest.raises(ValueError, match="acyclic"):
            j_of_schema(fig1_oracle, cyclic)
