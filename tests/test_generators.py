"""Tests for the synthetic dataset generators."""

import pytest

from repro.common import TOL
from repro.core.schema import Schema
from repro.data.generators import (
    NURSERY_ATTRS,
    NURSERY_CLASSES,
    decomposable,
    lemma54_example,
    markov_tree,
    nursery,
    paper_running_example,
    surrogate,
)
from repro.entropy.oracle import make_oracle
from repro.quality.spurious import spurious_tuple_count


class TestPaperExamples:
    def test_fig1_shape(self):
        r = paper_running_example()
        assert r.n_rows == 4 and r.n_cols == 6
        assert r.columns == tuple("ABCDEF")

    def test_fig1_red_shape(self):
        r = paper_running_example(with_red_tuple=True)
        assert r.n_rows == 5
        assert r.rows()[4] == ("a1", "b2", "c1", "d2", "e2", "f1")

    def test_lemma54_shape(self):
        r = lemma54_example()
        assert r.n_rows == 2 and r.n_cols == 4


class TestNursery:
    @pytest.fixture(scope="class")
    def data(self):
        return nursery()

    def test_shape(self, data):
        assert data.n_rows == 12960
        assert data.n_cols == 9
        assert data.n_cells == 116640  # the paper's cell count

    def test_domain_sizes(self, data):
        sizes = [data.cardinality(j) for j in range(8)]
        assert sizes == [len(dom) for __, dom in NURSERY_ATTRS]

    def test_full_cartesian_product(self, data):
        assert data.distinct_count(range(8)) == 12960

    def test_class_is_function_of_inputs(self, data):
        assert data.distinct_count(range(9)) == 12960
        # class depends functionally on the 8 inputs: H(class | inputs) = 0.
        o = make_oracle(data.sample_rows(2000, seed=0))
        assert o.cond_entropy({8}, set(range(8))) == pytest.approx(0.0, abs=TOL)

    def test_class_values_and_skew(self, data):
        values = set(data.column_values("class"))
        assert values <= set(NURSERY_CLASSES)
        assert len(values) == 5
        counts = {v: 0 for v in values}
        for v in data.column_values("class"):
            counts[v] += 1
        # health == not_recom forces exactly a third of rows.
        assert counts["not_recom"] == 12960 // 3
        # "recommend" is rare, as in the real data.
        assert counts["recommend"] < 200

    def test_inputs_mutually_independent(self, data):
        """The first 8 attributes form a uniform product: I = 0 exactly."""
        o = make_oracle(data)
        assert o.mutual_information({0}, {1}) == pytest.approx(0.0, abs=TOL)
        assert o.mutual_information({2, 3}, {4, 5}) == pytest.approx(0.0, abs=TOL)


class TestMarkovTree:
    def test_shape_and_determinism(self):
        r1 = markov_tree(6, 200, seed=5)
        r2 = markov_tree(6, 200, seed=5)
        assert r1.n_rows == 200 and r1.n_cols == 6
        assert r1.rows() == r2.rows()  # seeded -> reproducible

    def test_different_seeds_differ(self):
        r1 = markov_tree(6, 200, seed=1)
        r2 = markov_tree(6, 200, seed=2)
        assert r1.rows() != r2.rows()

    def test_fd_edges_exact(self):
        """With fd_fraction=1 every non-root tree column is a function of
        its parent, hence H(child | parents...) = 0 for some parent."""
        r = markov_tree(5, 300, seed=9, fd_fraction=1.0, independent_fraction=0.0)
        o = make_oracle(r)
        for child in range(1, 5):
            assert any(
                o.cond_entropy({child}, {p}) <= TOL for p in range(child)
            ), f"column {child} is not determined by any earlier column"

    def test_independent_columns_appended(self):
        r = markov_tree(8, 400, seed=3, independent_fraction=0.5)
        assert r.n_cols == 8

    def test_noise_changes_cells(self):
        clean = markov_tree(5, 300, seed=4, noise=0.0)
        noisy = markov_tree(5, 300, seed=4, noise=0.3)
        assert clean.rows() != noisy.rows()

    def test_invalid_cols(self):
        with pytest.raises(ValueError):
            markov_tree(0, 10)

    def test_planted_ci_approximately_holds(self):
        """A cut through the Markov tree has small empirical J."""
        r = markov_tree(4, 4000, seed=11, fd_fraction=0.0, determinism=0.9)
        o = make_oracle(r)
        # Column 0 is the root; each later column hangs off an earlier one.
        # I(later ; earlier | direct parent) should be ~0; bound loosely.
        mi = o.mutual_information({2}, {3}, {0, 1})
        assert mi < 0.2


class TestDecomposable:
    def test_exact_when_noiseless(self):
        bags = [["A", "B"], ["B", "C"], ["C", "D"]]
        r = decomposable(bags, 400, seed=2)
        schema = Schema(
            [frozenset(r.col_indices(b)) for b in bags]
        )
        o = make_oracle(r)
        assert schema.j_measure(o) == pytest.approx(0.0, abs=1e-9)
        assert spurious_tuple_count(r, schema) == 0

    def test_noise_rows_break_exactness(self):
        bags = [["A", "B"], ["B", "C"]]
        clean = decomposable(bags, 300, seed=3)
        noisy = decomposable(bags, 300, seed=3, noise_rows=60)
        schema = Schema([frozenset(clean.col_indices(b)) for b in bags])
        o_clean, o_noisy = make_oracle(clean), make_oracle(noisy)
        assert schema.j_measure(o_noisy) > schema.j_measure(o_clean)

    def test_row_count(self):
        r = decomposable([["A", "B"], ["B", "C"]], 100, noise_rows=20)
        assert r.n_rows == 120


class TestSurrogate:
    def test_named(self):
        r = surrogate("TestData", 7, 150, seed=1)
        assert r.name == "TestData"
        assert r.n_cols == 7 and r.n_rows == 150
