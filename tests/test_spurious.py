"""Tests for spurious-tuple counting (Yannakakis vs materialised join)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schema import Schema
from repro.quality.spurious import (
    join_row_count,
    materialized_join_rows,
    spurious_tuple_count,
    spurious_tuple_pct,
)
from tests.conftest import random_relation

A, B, C, D, E, F = range(6)


def fs(*xs):
    return frozenset(xs)


FIG1_SCHEMA = Schema([fs(A, F), fs(A, C, D), fs(A, B, D), fs(B, D, E)])


class TestJoinRowCount:
    def test_fig1_lossless(self, fig1):
        assert join_row_count(fig1, FIG1_SCHEMA) == 4
        assert spurious_tuple_count(fig1, FIG1_SCHEMA) == 0
        assert spurious_tuple_pct(fig1, FIG1_SCHEMA) == 0.0

    def test_fig1_red_one_spurious(self, fig1_red):
        """Section 2: adding the red tuple creates exactly one spurious
        tuple, (a2, b2, c2, d2, e2, f2)."""
        assert join_row_count(fig1_red, FIG1_SCHEMA) == 6
        assert spurious_tuple_count(fig1_red, FIG1_SCHEMA) == 1
        assert spurious_tuple_pct(fig1_red, FIG1_SCHEMA) == pytest.approx(20.0)

    def test_red_spurious_tuple_identity(self, fig1_red):
        rows = materialized_join_rows(fig1_red, FIG1_SCHEMA)
        base = fig1_red.row_set()
        extra = rows - base
        assert len(extra) == 1
        decoded = next(iter(extra))
        # Decode the codes back to the labels of Fig. 1.
        labels = tuple(
            fig1_red.domains[j][decoded[j]] for j in range(6)
        )
        assert labels == ("a2", "b2", "c2", "d2", "e2", "f2")

    def test_single_bag_schema(self, fig1):
        s = Schema([fs(*range(6))])
        assert join_row_count(fig1, s) == 4
        assert spurious_tuple_count(fig1, s) == 0

    def test_independent_bags_product(self):
        from repro.data.relation import Relation

        r = Relation.from_rows([(0, 0), (1, 1), (2, 0)], ["a", "b"])
        s = Schema([fs(0), fs(1)])
        # Join of projections = 3 x 2 cartesian product.
        assert join_row_count(r, s) == 6
        assert spurious_tuple_count(r, s) == 3

    def test_matches_materialized_on_fig1(self, fig1, fig1_red):
        for rel in (fig1, fig1_red):
            for schema in (
                FIG1_SCHEMA,
                Schema([fs(A, F), fs(A, B, C, D, E)]),
                Schema([fs(A, B, C), fs(C, D, E), fs(E, F)]),
            ):
                assert join_row_count(rel, schema) == len(
                    materialized_join_rows(rel, schema)
                )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 4000))
    def test_matches_materialized_property(self, seed):
        r = random_relation(5, 20, seed=seed)
        for schema in (
            Schema([fs(0, 1, 2), fs(2, 3, 4)]),
            Schema([fs(0, 1), fs(1, 2), fs(2, 3), fs(3, 4)]),
            Schema([fs(0), fs(1), fs(2), fs(3), fs(4)]),
        ):
            assert join_row_count(r, schema) == len(
                materialized_join_rows(r, schema)
            )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 4000))
    def test_join_contains_relation(self, seed):
        """Decompose-then-join never loses tuples (spurious >= 0)."""
        r = random_relation(4, 15, seed=seed)
        schema = Schema([fs(0, 1), fs(1, 2, 3)])
        assert spurious_tuple_count(r, schema) >= 0
        assert r.row_set() <= materialized_join_rows(r, schema)

    def test_duplicates_ignored(self):
        from repro.data.relation import Relation

        r = Relation.from_rows([(0, 0), (0, 0), (1, 1)], ["a", "b"])
        s = Schema([fs(0), fs(1)])
        # Distinct base is 2; join is 2x2=4.
        assert spurious_tuple_count(r, s) == 2
        assert spurious_tuple_pct(r, s) == pytest.approx(100.0)

    def test_lee_connection(self, fig1_oracle, fig1):
        """J(S) = 0 iff no spurious tuples (Lee / Theorem 3.3)."""
        exact = FIG1_SCHEMA
        assert exact.j_measure(fig1_oracle) == pytest.approx(0, abs=1e-9)
        assert spurious_tuple_count(fig1, exact) == 0
        lossy = Schema([fs(A, B, C), fs(C, D, E, F)])
        j = lossy.j_measure(fig1_oracle)
        spurious = spurious_tuple_count(fig1, lossy)
        assert (j <= 1e-9) == (spurious == 0)


class TestEmptyEdgeCases:
    def test_empty_relation(self):
        from repro.data.relation import Relation
        import numpy as np

        r = Relation(np.zeros((0, 2), dtype=np.int64), ["a", "b"])
        s = Schema([fs(0), fs(1)])
        assert join_row_count(r, s) == 0
        assert spurious_tuple_pct(r, s) == 0.0
