"""Tests for MineMinSeps / ReduceMinSep against exhaustive enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.budget import SearchBudget
from repro.core.fullmvd import key_separates
from repro.core.minsep import mine_all_min_seps, mine_min_seps, reduce_min_sep
from repro.entropy.oracle import make_oracle
from repro.reference import minimal_separators as brute_min_seps
from tests.conftest import random_relation

A, B, C, D, E, F = range(6)


class TestReduceMinSep:
    def test_result_is_minimal_separator(self, fig1_oracle):
        # Omega - {E, F} separates E and F at eps=0? First confirm, then
        # the reduction must return a minimal separator.
        pair = (E, F)
        universe = frozenset(range(6)) - {E, F}
        if key_separates(fig1_oracle, universe, pair, 0.0):
            sep = reduce_min_sep(fig1_oracle, 0.0, universe, pair)
            assert key_separates(fig1_oracle, sep, pair, 0.0)
            for x in sep:
                assert not key_separates(fig1_oracle, sep - {x}, pair, 0.0)

    def test_already_minimal_untouched(self, fig1_oracle):
        # {A} is a minimal A-excluded separator for (B, F)? A ->> F|BCDE
        # separates F from B with key {A}; the empty key does not.
        pair = (B, F)
        assert key_separates(fig1_oracle, {A}, pair, 0.0)
        assert not key_separates(fig1_oracle, frozenset(), pair, 0.0)
        assert reduce_min_sep(fig1_oracle, 0.0, {A}, pair) == frozenset({A})


class TestMineMinSeps:
    def test_invalid_pair(self, fig1_oracle):
        with pytest.raises(ValueError):
            mine_min_seps(fig1_oracle, 0.0, (0, 0))
        with pytest.raises(ValueError):
            mine_min_seps(fig1_oracle, 0.0, (0, 99))

    def test_gate_no_separator(self):
        # Two perfectly correlated columns with nothing to condition on:
        # I(A;B) = 1 > 0, so no separator exists at eps = 0.
        from repro.data.relation import Relation

        r = Relation.from_rows([(0, 0), (1, 1)], ["A", "B"])
        assert mine_min_seps(make_oracle(r), 0.0, (0, 1)) == []

    def test_lemma54_c_separates(self, lemma54_oracle):
        # In the 2-tuple example H(A | C) = 0, so {C} separates A and B
        # (and the empty set does not, since I(A;B) = 1).
        assert mine_min_seps(lemma54_oracle, 0.0, (1, 2)) == [frozenset({3})]

    def test_results_are_minimal_separators(self, fig1_oracle):
        for pair in ((B, C), (E, F), (C, F)):
            for sep in mine_min_seps(fig1_oracle, 0.0, pair):
                assert key_separates(fig1_oracle, sep, pair, 0.0)
                for x in sep:
                    assert not key_separates(fig1_oracle, sep - {x}, pair, 0.0)

    def test_fig1_matches_brute_force(self, fig1, fig1_oracle):
        for pair in ((B, C), (B, F), (E, F), (A, B)):
            got = set(mine_min_seps(fig1_oracle, 0.0, pair))
            expected = set(brute_min_seps(fig1, pair, 0.0))
            assert got == expected, f"pair {pair}"

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 1500), eps=st.sampled_from([0.0, 0.1, 0.3]))
    def test_property_vs_brute_force(self, seed, eps):
        r = random_relation(5, 16, seed=seed)
        o = make_oracle(r)
        pair = (0, 4)
        got = set(mine_min_seps(o, eps, pair))
        expected = set(brute_min_seps(r, pair, eps))
        assert got == expected

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1500))
    def test_larger_eps_never_loses_separability(self, seed):
        """If a pair is separable at eps, it stays separable at eps' > eps."""
        r = random_relation(5, 14, seed=seed)
        o = make_oracle(r)
        pair = (1, 3)
        small = mine_min_seps(o, 0.0, pair)
        large = mine_min_seps(o, 0.5, pair)
        if small:
            assert large

    def test_budget_returns_prefix(self, fig1_oracle):
        budget = SearchBudget(max_steps=0)
        budget.start()
        budget.tick()  # already exhausted
        budget.max_steps = 1
        out = mine_min_seps(fig1_oracle, 0.0, (B, C), budget=budget)
        full = mine_min_seps(fig1_oracle, 0.0, (B, C))
        assert set(out) <= set(full)


class TestMineAllMinSeps:
    def test_covers_all_pairs(self, fig1_oracle):
        out = mine_all_min_seps(fig1_oracle, 0.0)
        assert len(out) == 15  # C(6,2)

    def test_restricted_pairs(self, fig1_oracle):
        out = mine_all_min_seps(fig1_oracle, 0.0, pairs=[(A, B), (E, F)])
        assert set(out) == {(A, B), (E, F)}

    def test_budget_skips_pairs(self, fig1_oracle):
        budget = SearchBudget(max_steps=1).start()
        budget.tick()
        out = mine_all_min_seps(fig1_oracle, 0.0, budget=budget)
        assert len(out) < 15
