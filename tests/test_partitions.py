"""Tests for stripped partitions (the CNT/TID analogue)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.relation import Relation
from repro.entropy.partitions import StrippedPartition, partition_product
from repro.reference import entropy_by_counting
from tests.conftest import random_relation


def brute_partition(relation, attrs):
    """Clusters of row ids agreeing on attrs, singletons stripped."""
    groups = {}
    for t, row in enumerate(relation.codes[:, sorted(attrs)]):
        groups.setdefault(tuple(row), []).append(t)
    return sorted(sorted(g) for g in groups.values() if len(g) >= 2)


def clusters_of(part):
    return sorted(sorted(int(t) for t in c) for c in part.clusters())


class TestConstruction:
    def test_from_relation_strips_singletons(self):
        r = Relation.from_rows([(1,), (1,), (2,), (3,)], ["a"])
        p = StrippedPartition.from_relation(r, [0])
        assert p.n_clusters == 1
        assert clusters_of(p) == [[0, 1]]
        assert p.n_singletons() == 2

    def test_single_cluster(self):
        p = StrippedPartition.single_cluster(5)
        assert p.n_clusters == 1
        assert p.size == 5
        assert p.entropy() == pytest.approx(0.0)

    def test_single_cluster_tiny(self):
        p = StrippedPartition.single_cluster(1)
        assert p.n_clusters == 0
        assert p.entropy() == pytest.approx(0.0)

    def test_matches_brute_force(self):
        r = random_relation(3, 50, seed=9)
        for attrs in ([0], [1], [0, 2], [0, 1, 2]):
            p = StrippedPartition.from_relation(r, attrs)
            assert clusters_of(p) == brute_partition(r, attrs)


class TestEntropy:
    def test_uniform_distinct_rows(self):
        r = Relation.from_rows([(i,) for i in range(8)], ["a"])
        p = StrippedPartition.from_relation(r, [0])
        assert p.entropy() == pytest.approx(3.0)  # log2(8)

    def test_constant_column(self):
        r = Relation.from_rows([(7,)] * 10, ["a"])
        p = StrippedPartition.from_relation(r, [0])
        assert p.entropy() == pytest.approx(0.0)

    def test_matches_counting_reference(self):
        r = random_relation(4, 80, seed=5)
        for attrs in ([0], [2, 3], [0, 1, 2, 3]):
            p = StrippedPartition.from_relation(r, attrs)
            assert p.entropy() == pytest.approx(
                entropy_by_counting(r, attrs), abs=1e-10
            )

    def test_entropy_cached(self):
        r = random_relation(2, 30, seed=1)
        p = StrippedPartition.from_relation(r, [0])
        assert p.entropy() == p.entropy()


class TestErrors:
    def test_g3_key_error_unique_column(self):
        r = Relation.from_rows([(i,) for i in range(5)], ["a"])
        p = StrippedPartition.from_relation(r, [0])
        assert p.g3_key_error() == 0.0

    def test_g3_key_error_constant(self):
        r = Relation.from_rows([(1,)] * 4, ["a"])
        p = StrippedPartition.from_relation(r, [0])
        assert p.g3_key_error() == pytest.approx(3 / 4)

    def test_g1_error_bounds(self):
        r = random_relation(2, 40, seed=2)
        p = StrippedPartition.from_relation(r, [0])
        assert 0.0 <= p.g1_error() <= 1.0


class TestIntersection:
    def test_intersect_matches_brute(self):
        r = random_relation(4, 60, seed=11)
        pa = StrippedPartition.from_relation(r, [0, 1])
        pb = StrippedPartition.from_relation(r, [2, 3])
        joint = pa.intersect(pb)
        assert clusters_of(joint) == brute_partition(r, [0, 1, 2, 3])

    def test_intersect_symmetric(self):
        r = random_relation(3, 50, seed=13)
        pa = StrippedPartition.from_relation(r, [0])
        pb = StrippedPartition.from_relation(r, [1, 2])
        assert clusters_of(pa.intersect(pb)) == clusters_of(pb.intersect(pa))

    def test_intersect_with_empty(self):
        r = Relation.from_rows([(i, 0) for i in range(6)], ["a", "b"])
        pa = StrippedPartition.from_relation(r, [0])  # all singletons
        pb = StrippedPartition.from_relation(r, [1])  # one big cluster
        assert pa.n_clusters == 0
        joint = pa.intersect(pb)
        assert joint.n_clusters == 0
        assert joint.entropy() == pytest.approx(math.log2(6))

    def test_intersect_rejects_mismatched_n(self):
        p1 = StrippedPartition.single_cluster(4)
        p2 = StrippedPartition.single_cluster(5)
        with pytest.raises(ValueError):
            p1.intersect(p2)

    def test_partition_product_multiway(self):
        r = random_relation(4, 70, seed=17)
        parts = [StrippedPartition.from_relation(r, [j]) for j in range(4)]
        joint = partition_product(parts)
        assert clusters_of(joint) == brute_partition(r, [0, 1, 2, 3])

    def test_partition_product_empty_args(self):
        with pytest.raises(ValueError):
            partition_product([])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), rows=st.integers(2, 40))
    def test_intersect_property(self, seed, rows):
        r = random_relation(3, rows, seed=seed)
        pa = StrippedPartition.from_relation(r, [0])
        pb = StrippedPartition.from_relation(r, [1])
        joint = pa.intersect(pb)
        assert clusters_of(joint) == brute_partition(r, [0, 1])
        # Product entropy >= both factor entropies (monotonicity).
        assert joint.entropy() >= pa.entropy() - 1e-9
        assert joint.entropy() >= pb.entropy() - 1e-9


class TestRepr:
    def test_repr(self):
        p = StrippedPartition.single_cluster(4)
        assert "StrippedPartition" in repr(p)


class TestRefinesGroupIds:
    """The vectorized refinement test must agree with the per-cluster loop."""

    @staticmethod
    def _loop_refines(part, target_ids):
        # The pre-vectorization reference implementation.
        for i in range(part.n_clusters):
            c = part.cluster(i)
            if len(np.unique(target_ids[c])) > 1:
                return False
        return True

    @given(seed=st.integers(0, 40), rows=st.integers(2, 60))
    @settings(max_examples=40, deadline=None)
    def test_matches_loop_version(self, seed, rows):
        r = random_relation(4, rows, seed=seed)
        part = StrippedPartition.from_relation(r, [0])
        for attrs in ([0], [0, 1], [1], [0, 1, 2], [3]):
            target_ids, _ = r.group_ids(attrs)
            assert part.refines_group_ids(target_ids) == self._loop_refines(
                part, target_ids
            )

    def test_exact_fd_detected(self):
        # b = f(a): the partition of {a} refines the grouping of {a,b}.
        rows = [(i % 3, (i % 3) * 10) for i in range(12)]
        r = Relation.from_rows(rows, ["a", "b"])
        part = StrippedPartition.from_relation(r, [0])
        ids_ab, _ = r.group_ids([0, 1])
        assert part.refines_group_ids(ids_ab)

    def test_violation_detected(self):
        rows = [(0, 0), (0, 1), (1, 2), (1, 2)]
        r = Relation.from_rows(rows, ["a", "b"])
        part = StrippedPartition.from_relation(r, [0])
        ids_ab, _ = r.group_ids([0, 1])
        assert not part.refines_group_ids(ids_ab)

    def test_empty_partition(self):
        r = Relation.from_rows([(1,), (2,), (3,)], ["a"])
        part = StrippedPartition.from_relation(r, [0])
        assert part.n_clusters == 0
        assert part.refines_group_ids(np.zeros(3, dtype=np.int64))
