"""Tests for the TANE-style FD miner and the Kivinen–Mannila measures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.relation import Relation
from repro.entropy.oracle import make_oracle
from repro.fd.measures import fd_conditional_entropy, g1_error, g2_error, g3_error
from repro.fd.tane import FD, brute_force_fds, fd_holds, mine_fds
from tests.conftest import random_relation


@pytest.fixture
def fd_relation():
    """b = f(a); c free; d constant."""
    rows = [
        (0, 10, 0, 7),
        (1, 11, 0, 7),
        (2, 10, 1, 7),
        (0, 10, 1, 7),
        (1, 11, 2, 7),
    ]
    return Relation.from_rows(rows, ["a", "b", "c", "d"])


class TestErrorsMeasures:
    def test_exact_fd_zero_errors(self, fd_relation):
        for g in (g1_error, g2_error, g3_error):
            assert g(fd_relation, [0], 1) == 0.0

    def test_constant_column(self, fd_relation):
        assert g3_error(fd_relation, [], 3) == 0.0
        assert g3_error(fd_relation, [], 1) > 0.0

    def test_g3_by_hand(self):
        # a=0 -> b in {0,0,1}: remove 1 tuple out of 4.
        r = Relation.from_rows([(0, 0), (0, 0), (0, 1), (1, 2)], ["a", "b"])
        assert g3_error(r, [0], 1) == pytest.approx(1 / 4)

    def test_g2_counts_whole_groups(self):
        r = Relation.from_rows([(0, 0), (0, 1), (1, 2), (2, 3)], ["a", "b"])
        # Only the a=0 group (2 tuples) violates.
        assert g2_error(r, [0], 1) == pytest.approx(2 / 4)

    def test_g1_pairs(self):
        r = Relation.from_rows([(0, 0), (0, 1)], ["a", "b"])
        # Ordered violating pairs: (t1,t2),(t2,t1) out of 4 -> 1/2.
        assert g1_error(r, [0], 1) == pytest.approx(0.5)

    def test_measure_ordering(self):
        """g1 <= g3 <= g2 on any instance (standard inequality)."""
        for seed in range(10):
            r = random_relation(3, 30, seed=seed)
            e1, e3, e2 = (
                g1_error(r, [0], 2),
                g3_error(r, [0], 2),
                g2_error(r, [0], 2),
            )
            assert e1 <= e3 + 1e-12
            assert e3 <= e2 + 1e-12

    def test_conditional_entropy_zero_iff_exact(self, fd_relation):
        o = make_oracle(fd_relation)
        assert fd_conditional_entropy(o, [0], 1) == pytest.approx(0.0, abs=1e-9)
        assert fd_conditional_entropy(o, [0], 2) > 0.01

    def test_empty_relation(self):
        import numpy as np

        r = Relation(np.zeros((0, 2), dtype=np.int64), ["a", "b"])
        assert g3_error(r, [0], 1) == 0.0
        assert g1_error(r, [0], 1) == 0.0
        assert g2_error(r, [0], 1) == 0.0


class TestFdHolds:
    def test_exact(self, fd_relation):
        assert fd_holds(fd_relation, [0], 1)
        assert not fd_holds(fd_relation, [0], 2)
        assert fd_holds(fd_relation, [0], 0)  # rhs in lhs is trivial

    def test_approximate(self):
        r = Relation.from_rows([(0, 0)] * 9 + [(0, 1)], ["a", "b"])
        assert not fd_holds(r, [0], 1)
        assert fd_holds(r, [0], 1, error=0.1)


class TestMineFds:
    def test_fd_relation_minimal_fds(self, fd_relation):
        fds = mine_fds(fd_relation)
        as_pairs = {(fd.lhs, fd.rhs) for fd in fds}
        assert (frozenset({0}), 1) in as_pairs  # a -> b
        assert (frozenset(), 3) in as_pairs  # {} -> d (constant)
        # a -> b means ab -> b must NOT be reported (non-minimal).
        assert not any(fd.rhs == 1 and len(fd.lhs) > 1 for fd in fds)

    def test_matches_brute_force_exact(self):
        for seed in (0, 5, 9):
            r = random_relation(4, 25, seed=seed)
            got = {(fd.lhs, fd.rhs) for fd in mine_fds(r)}
            expected = {(fd.lhs, fd.rhs) for fd in brute_force_fds(r)}
            assert got == expected, f"seed {seed}"

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 3000), error=st.sampled_from([0.0, 0.1]))
    def test_matches_brute_force_property(self, seed, error):
        r = random_relation(4, 18, seed=seed)
        got = {(fd.lhs, fd.rhs) for fd in mine_fds(r, error=error)}
        expected = {(fd.lhs, fd.rhs) for fd in brute_force_fds(r, error=error)}
        assert got == expected

    def test_max_lhs_cutoff(self):
        r = random_relation(5, 20, seed=3)
        fds = mine_fds(r, max_lhs=1)
        assert all(len(fd.lhs) <= 1 for fd in fds)

    def test_key_yields_fds(self):
        # Column a is a key: a -> everything.
        r = Relation.from_rows([(i, i % 2, i % 3) for i in range(12)], "abc")
        fds = {(fd.lhs, fd.rhs) for fd in mine_fds(r)}
        assert (frozenset({0}), 1) in fds
        assert (frozenset({0}), 2) in fds

    def test_format(self):
        fd = FD(frozenset({0, 2}), 1)
        assert fd.format("abc") == "a,c -> b"
        assert fd.format() == "0,2 -> 1"
        assert FD(frozenset(), 1).format("ab") == "{} -> b"
