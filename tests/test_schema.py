"""Tests for the Schema class."""

import pytest

from repro.core.schema import Schema, normalize_bags


def fs(*xs):
    return frozenset(xs)


class TestNormalization:
    def test_subsumed_bags_dropped(self):
        bags = normalize_bags([fs(0, 1), fs(0), fs(1, 2)])
        assert set(bags) == {fs(0, 1), fs(1, 2)}

    def test_duplicates_dropped(self):
        assert len(normalize_bags([fs(0, 1), fs(1, 0)])) == 1

    def test_empty_bags_dropped(self):
        assert normalize_bags([fs(0), fs()]) == (fs(0),)

    def test_canonical_order(self):
        bags = normalize_bags([fs(2, 3), fs(0, 1)])
        assert bags == (fs(0, 1), fs(2, 3))


class TestConstruction:
    def test_normalizing_constructor(self):
        s = Schema([fs(0, 1), fs(0)])
        assert s.m == 1

    def test_strict_constructor_rejects_subsumption(self):
        with pytest.raises(ValueError, match="antichain"):
            Schema([fs(0, 1), fs(0)], normalize=False)

    def test_needs_a_bag(self):
        with pytest.raises(ValueError, match="at least one bag"):
            Schema([])


class TestStructure:
    def test_counts(self):
        s = Schema([fs(0, 1, 2), fs(2, 3)])
        assert s.m == 2
        assert len(s) == 2
        assert s.width == 3
        assert s.intersection_width == 1
        assert s.attributes == fs(0, 1, 2, 3)

    def test_covers(self):
        s = Schema([fs(0, 1), fs(1, 2)])
        assert s.covers({0, 1, 2})
        assert not s.covers({0, 3})

    def test_iteration(self):
        s = Schema([fs(0, 1), fs(1, 2)])
        assert set(s) == {fs(0, 1), fs(1, 2)}


class TestAcyclicity:
    def test_acyclic(self):
        assert Schema([fs(0, 1), fs(1, 2)]).is_acyclic()

    def test_cyclic(self):
        s = Schema([fs(0, 1), fs(1, 2), fs(0, 2)])
        assert not s.is_acyclic()
        with pytest.raises(ValueError):
            s.join_tree()

    def test_join_tree_cached(self):
        s = Schema([fs(0, 1), fs(1, 2)])
        assert s.join_tree() is s.join_tree()

    def test_support(self):
        s = Schema([fs(0, 1), fs(1, 2)])
        (mvd,) = s.support()
        assert mvd.key == fs(1)
        assert set(mvd.dependents) == {fs(0), fs(2)}


class TestSemantics:
    def test_j_measure(self, fig1_oracle):
        s = Schema([fs(0, 5), fs(0, 2, 3), fs(0, 1, 3), fs(1, 3, 4)])
        assert s.j_measure(fig1_oracle) == pytest.approx(0.0, abs=1e-9)

    def test_decompose(self, fig1):
        s = Schema([fs(0, 5), fs(0, 1, 2, 3, 4)])
        parts = s.decompose(fig1)
        assert len(parts) == 2
        af = next(p for p in parts if p.n_cols == 2)
        assert af.columns == ("A", "F")
        assert af.n_rows == 2  # deduplicated


class TestDunder:
    def test_equality_and_hash(self):
        s1 = Schema([fs(0, 1), fs(1, 2)])
        s2 = Schema([fs(1, 2), fs(0, 1)])
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != Schema([fs(0, 1, 2)])

    def test_format(self):
        s = Schema([fs(0, 1)])
        assert s.format("AB") == "{{A,B}}"

    def test_repr(self):
        assert "Schema" in repr(Schema([fs(0)]))
