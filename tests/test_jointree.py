"""Tests for join trees: validation, support MVDs, J evaluation."""

import pytest

from repro.core.jointree import JoinTree
from repro.core.mvd import MVD

A, B, C, D, E, F = range(6)

FIG1_BAGS = [
    frozenset({A, F}),
    frozenset({A, C, D}),
    frozenset({A, B, D}),
    frozenset({B, D, E}),
]


@pytest.fixture
def fig1_tree():
    return JoinTree.from_bags(FIG1_BAGS)


class TestConstruction:
    def test_from_bags(self, fig1_tree):
        assert fig1_tree.m == 4
        assert fig1_tree.attributes == frozenset(range(6))

    def test_from_bags_cyclic_raises(self):
        with pytest.raises(ValueError, match="acyclic"):
            JoinTree.from_bags([{0, 1}, {1, 2}, {0, 2}])

    def test_explicit_edges_validated(self):
        bags = [frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})]
        with pytest.raises(ValueError, match="running intersection"):
            JoinTree(bags, [(0, 1), (1, 2)])

    def test_explicit_valid_edges(self):
        bags = [frozenset({0, 1}), frozenset({1, 2})]
        jt = JoinTree(bags, [(0, 1)])
        assert jt.separator((0, 1)) == frozenset({1})

    def test_single_bag(self):
        jt = JoinTree([frozenset({0, 1})], [])
        assert jt.m == 1
        assert jt.support() == []


class TestStructure:
    def test_separators(self, fig1_tree):
        seps = {frozenset(s) for s in fig1_tree.separators()}
        assert seps == {
            frozenset({A}),
            frozenset({A, D}),
            frozenset({B, D}),
        }

    def test_width(self, fig1_tree):
        assert fig1_tree.width == 3

    def test_intersection_width(self, fig1_tree):
        assert fig1_tree.intersection_width == 2  # |AD| = |BD| = 2

    def test_example_32_support(self, fig1_tree):
        """Example 3.2: MVD(T) = {BD->>E|ACF, AD->>CF|BE, A->>F|BCDE}."""
        support = set(fig1_tree.support())
        assert support == {
            MVD({B, D}, [{E}, {A, C, F}]),
            MVD({A, D}, [{C, F}, {B, E}]),
            MVD({A}, [{F}, {B, C, D, E}]),
        }

    def test_support_size(self, fig1_tree):
        assert len(fig1_tree.support()) == fig1_tree.m - 1


class TestSemantics:
    def test_j_measure_zero_on_fig1(self, fig1_tree, fig1_oracle):
        assert fig1_tree.j_measure(fig1_oracle) == pytest.approx(0.0, abs=1e-9)

    def test_j_measure_positive_with_red(self, fig1_tree, fig1_red_oracle):
        assert fig1_tree.j_measure(fig1_red_oracle) > 0.01


class TestDunder:
    def test_equality_up_to_edge_direction(self):
        bags = [frozenset({0, 1}), frozenset({1, 2})]
        assert JoinTree(bags, [(0, 1)]) == JoinTree(bags, [(1, 0)])

    def test_hash(self, fig1_tree):
        assert hash(fig1_tree) == hash(JoinTree.from_bags(FIG1_BAGS))

    def test_format(self, fig1_tree):
        text = fig1_tree.format("ABCDEF")
        assert "-[" in text and "{A,F}" in text

    def test_repr(self, fig1_tree):
        assert "JoinTree" in repr(fig1_tree)
