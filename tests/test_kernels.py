"""Parity suite for the counts-first kernel layer (repro.kernels).

Every kernel must be *bit-identical* — not approximately equal — to the
legacy ``np.unique`` sort path: identical counts, identical dense ids,
identical entropies, identical partition layouts.  The suite runs both
with and without numba in CI (the ``kernels`` job), so the optional
native tier can never become load-bearing.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maimon import Maimon
from repro.data import datasets
from repro.data.relation import Relation
from repro.entropy.oracle import EntropyOracle
from repro.entropy.partitions import StrippedPartition, combine_codes
from repro.entropy.plicache import PLICacheEngine
from repro.kernels import (
    GroupCounter,
    bincount_counts,
    bincount_ids,
    bincount_ids_and_counts,
    bincount_limit,
    entropy_from_counts,
    grouping_order,
    key_counts,
    sort_counts,
    sort_ids,
    sort_ids_and_counts,
)
from repro.kernels import native
from conftest import random_relation

needs_numba = pytest.mark.skipif(
    not native.HAVE_NUMBA, reason="numba tier not installed"
)


def legacy_group_ids(codes, radix, idx):
    """The pre-kernel Relation.group_ids: pairwise compose + np.unique."""
    ids = codes[:, idx[0]]
    card = max(radix[idx[0]], 1)
    for j in idx[1:]:
        cj = max(radix[j], 1)
        if card > (2**62) // max(cj, 1):
            uniq, ids = np.unique(ids, return_inverse=True)
            card = len(uniq)
        ids = ids * cj + codes[:, j]
        card = card * cj
    uniq, dense = np.unique(ids, return_inverse=True)
    return dense.reshape(-1).astype(np.int64, copy=False), len(uniq)


def legacy_combine_codes(codes, idx, radix):
    """The pre-kernel combine_codes with its unconditional int64 copy."""
    keys = codes[:, idx[0]].astype(np.int64, copy=True)
    for pos in range(1, len(idx)):
        keys *= radix[pos]
        keys += codes[:, idx[pos]]
    return keys


def keys_strategy(max_key=40, max_len=300):
    return st.lists(st.integers(0, max_key), min_size=1, max_size=max_len).map(
        lambda xs: np.asarray(xs, dtype=np.int64)
    )


class TestCountingKernels:
    """bincount / sort (/ hash) answer identically on arbitrary keys."""

    @settings(max_examples=60, deadline=None)
    @given(keys=keys_strategy())
    def test_counts_kernels_identical(self, keys):
        ref = sort_counts(keys)
        assert np.array_equal(bincount_counts(keys), ref)
        if native.HAVE_NUMBA:
            uniq, counts = native.hash_key_counts(keys)
            assert np.array_equal(counts, ref)
            assert np.array_equal(uniq, np.unique(keys))

    @settings(max_examples=60, deadline=None)
    @given(keys=keys_strategy())
    def test_ids_kernels_identical(self, keys):
        ref_ids, ref_n = sort_ids(keys)
        got_ids, got_n = bincount_ids(keys)
        assert got_n == ref_n
        assert np.array_equal(got_ids, ref_ids)

    @settings(max_examples=60, deadline=None)
    @given(keys=keys_strategy())
    def test_fused_ids_and_counts_identical(self, keys):
        ref_ids, ref_counts = sort_ids_and_counts(keys)
        got_ids, got_counts = bincount_ids_and_counts(keys)
        assert np.array_equal(got_ids, ref_ids)
        assert np.array_equal(got_counts, ref_counts)

    @settings(max_examples=60, deadline=None)
    @given(keys=keys_strategy())
    def test_entropy_bit_identical_across_kernels(self, keys):
        n = len(keys)
        h_sort = entropy_from_counts(sort_counts(keys), n)
        h_bin = entropy_from_counts(bincount_counts(keys), n)
        assert h_bin == h_sort  # bitwise, not approx
        if native.HAVE_NUMBA:
            h_hash = entropy_from_counts(native.hash_key_counts(keys)[1], n)
            assert h_hash == h_sort

    @settings(max_examples=40, deadline=None)
    @given(keys=keys_strategy(max_key=10_000_000))
    def test_key_counts_sparse_keys(self, keys):
        uniq_ref, counts_ref = np.unique(keys, return_counts=True)
        uniq, counts = key_counts(keys, None, len(keys))
        assert np.array_equal(uniq, uniq_ref)
        assert np.array_equal(counts, counts_ref)

    def test_key_counts_bincount_branch(self):
        keys = np.array([3, 1, 3, 0, 1, 3], dtype=np.int64)
        uniq, counts = key_counts(keys, 4, len(keys))
        assert np.array_equal(uniq, [0, 1, 3])
        assert np.array_equal(counts, [1, 2, 3])

    @needs_numba
    def test_hash_kernel_matches_on_random_relations(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            keys = rng.integers(0, 10**12, size=4000)
            uniq, counts = native.hash_key_counts(keys)
            uniq_ref, counts_ref = np.unique(keys, return_counts=True)
            assert np.array_equal(uniq, uniq_ref)
            assert np.array_equal(counts, counts_ref)


class TestGroupingOrder:
    """Counting sort == np.argsort(kind='stable'), element for element."""

    @settings(max_examples=60, deadline=None)
    @given(keys=keys_strategy())
    def test_order_matches_stable_argsort(self, keys):
        ids, n_groups = sort_ids(keys)
        counts = np.bincount(ids, minlength=n_groups)
        order = grouping_order(ids, counts)
        assert np.array_equal(order, np.argsort(ids, kind="stable"))

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(1, 120),
        cols=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_from_group_ids_layout_identical_to_legacy(self, rows, cols, seed):
        r = random_relation(cols, rows, seed=seed)
        ids, n_groups = r.group_ids(range(cols))
        part = StrippedPartition.from_group_ids(ids, n_groups, rows)
        # Legacy reference: comparison argsort.
        counts = np.bincount(ids, minlength=n_groups)
        order = np.argsort(ids, kind="stable")
        keep = counts[ids[order]] >= 2
        ref_tids = order[keep]
        sizes = counts[counts >= 2]
        ref_offsets = np.concatenate(([0], np.cumsum(sizes, dtype=np.int64)))
        assert np.array_equal(part.tids, ref_tids)
        assert np.array_equal(part.offsets, ref_offsets)

    def test_many_groups_wide_dtype_lane(self):
        # > uint16 groups exercises the uint32 cast branch.
        n = 70_000
        ids = np.arange(n, dtype=np.int64) // 2  # 35k groups of 2
        counts = np.bincount(ids)
        assert np.array_equal(
            grouping_order(ids, counts), np.argsort(ids, kind="stable")
        )


class TestCompose:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(1, 150),
        cols=st.integers(2, 5),
        seed=st.integers(0, 1000),
    )
    def test_combine_codes_matches_legacy(self, rows, cols, seed):
        r = random_relation(cols, rows, seed=seed)
        idx = tuple(range(cols))
        radix = tuple(max(r.radix[j], 1) for j in idx)
        got = combine_codes(r.codes, idx, radix)
        want = legacy_combine_codes(r.codes, idx, radix)
        assert got.dtype == np.int64
        assert np.array_equal(got, want)

    def test_combine_codes_single_column_is_view(self):
        r = random_relation(3, 20, seed=1)
        keys = combine_codes(r.codes, (1,), (max(r.radix[1], 1),))
        assert np.shares_memory(keys, r.codes)
        assert np.array_equal(keys, r.codes[:, 1])

    def test_combine_codes_does_not_mutate_codes(self):
        r = random_relation(3, 30, seed=2)
        before = r.codes.copy()
        combine_codes(r.codes, (0, 1, 2), tuple(max(x, 1) for x in r.radix))
        assert np.array_equal(r.codes, before)

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(1, 150),
        cols=st.integers(1, 5),
        seed=st.integers(0, 2000),
    )
    def test_group_ids_matches_legacy(self, rows, cols, seed):
        r = random_relation(cols, rows, seed=seed)
        for size in range(1, cols + 1):
            for idx in itertools.combinations(range(cols), size):
                got_ids, got_n = r.group_ids(idx)
                want_ids, want_n = legacy_group_ids(r.codes, r.radix, idx)
                assert got_n == want_n
                assert np.array_equal(got_ids, want_ids)

    def test_group_ids_huge_radix_densify_matches_legacy(self):
        # Radix product beyond 2^62 forces the mid-compose densify on
        # both paths; results must still match.
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 2**22, size=(500, 3)).astype(np.int64)
        r = Relation.from_codes(codes)
        sparse = r.take_rows(rng.choice(500, size=400, replace=False))
        # take_rows keeps loose radix: force an artificial huge radix by
        # grouping repeated wide columns.
        wide = Relation(
            np.hstack([sparse.codes] * 2),
            [f"c{i}" for i in range(6)],
        )
        got_ids, got_n = wide.group_ids(range(6))
        want_ids, want_n = legacy_group_ids(wide.codes, wide.radix, tuple(range(6)))
        assert got_n == want_n
        assert np.array_equal(got_ids, want_ids)

    def test_group_sizes_matches_bincount_of_ids(self):
        r = random_relation(4, 200, seed=5)
        for idx in ((0,), (1, 3), (0, 1, 2, 3), ()):
            ids, n_groups = r.group_ids(idx)
            assert np.array_equal(
                r.group_sizes(idx), np.bincount(ids, minlength=n_groups)
            )


class TestDispatcher:
    def test_bincount_selected_for_small_radix(self):
        r = random_relation(4, 5000, seed=0)
        gc = r.kernels
        gc.reset_stats()
        gc.counts((0, 1, 2, 3))
        assert gc.stats["bincount"] == 1 and gc.stats["sort"] == 0

    def test_sort_or_hash_selected_for_sparse_keys(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 10**6, size=(800, 3)).astype(np.int64)
        gc = GroupCounter(codes, [int(codes[:, j].max()) + 1 for j in range(3)])
        gc.counts((0,))
        fallback = gc.stats["hash"] if native.HAVE_NUMBA else gc.stats["sort"]
        assert fallback == 1 and gc.stats["bincount"] == 0

    def test_predicted_kernel(self):
        r = random_relation(4, 5000, seed=0)
        assert r.kernels.predicted_kernel((0, 1)) == "bincount"
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 10**7, size=(100, 2)).astype(np.int64)
        gc = GroupCounter(codes, [int(codes[:, j].max()) + 1 for j in range(2)])
        assert gc.predicted_kernel((0,)) in ("sort", "hash")

    def test_prefix_cache_hits_on_lattice_order(self):
        r = random_relation(6, 1000, seed=2)
        gc = r.kernels
        gc.reset_stats()
        gc.clear_cache()
        gc.counts((0, 1, 2))
        assert gc.stats["prefix_hits"] == 0
        gc.counts((0, 1, 3))  # shares composed (0, 1)
        assert gc.stats["prefix_hits"] == 1
        # Sibling reuse must not change results.
        fresh = GroupCounter(r.codes, r.radix, prefix_budget=0)
        assert np.array_equal(gc.counts((0, 1, 3)), fresh.counts((0, 1, 3)))
        assert fresh.stats["prefix_hits"] == 0

    def test_prefix_cache_budget_evicts(self):
        r = random_relation(6, 100, seed=3)
        gc = GroupCounter(r.codes, r.radix, prefix_budget=150)  # ~1 entry
        for idx in itertools.combinations(range(6), 3):
            gc.counts(idx)
        assert gc._prefix_elems <= 150

    def test_wide_key_ids_and_counts_match_sort(self):
        # A single sparse column keeps the composed bound above the
        # bincount limit, forcing the fallback lane: hash when numba is
        # installed, sort otherwise.  Either way the fused ids/counts
        # (and the ids-only form) must equal the legacy sort kernel
        # bit-for-bit.
        rng = np.random.default_rng(6)
        codes = rng.integers(0, 10**6, size=(700, 1)).astype(np.int64)
        gc = GroupCounter(codes, [int(codes[:, 0].max()) + 1])
        keys, bound = gc.compose_keys((0,))
        assert bound > gc.limit
        ref_ids, ref_counts = sort_ids_and_counts(keys)
        got_ids, got_counts = gc.ids_and_counts((0,))
        assert np.array_equal(got_ids, ref_ids)
        assert np.array_equal(got_counts, ref_counts)
        got_ids2, got_n = gc.ids((0,))
        assert np.array_equal(got_ids2, ref_ids)
        assert got_n == len(ref_counts)
        lane = "hash" if native.HAVE_NUMBA else "sort"
        assert gc.stats[lane] == 2 and gc.stats["bincount"] == 0

    def test_bincount_limit_scales(self):
        assert bincount_limit(10) == 1 << 16
        assert bincount_limit(10**6) == 4 * 10**6
        assert bincount_limit(10**9) == 1 << 24

    def test_stats_reset_and_snapshot(self):
        r = random_relation(3, 50, seed=4)
        gc = r.kernels
        gc.counts((0, 1))
        snap = gc.snapshot()
        assert sum(snap.values()) > 0
        snap["bincount"] = 999  # copies do not alias
        gc.reset_stats()
        assert sum(gc.snapshot().values()) == 0

    def test_snapshot_since_reports_deltas(self):
        r = random_relation(3, 50, seed=4)
        gc = r.kernels
        gc.counts((0, 1))
        baseline = gc.snapshot()
        assert sum(gc.snapshot_since(baseline).values()) == 0
        gc.counts((0, 2))
        delta = gc.snapshot_since(baseline)
        assert sum(delta.values()) > 0
        # Absolute counters include the pre-baseline activity.
        assert sum(gc.snapshot().values()) > sum(delta.values())


class TestEnginesUseKernels:
    def test_pli_fast_path_equals_naive_bitwise(self):
        # Both answer counts-first from the same dispatcher: bit-equal.
        r = random_relation(5, 300, seed=7)
        pli = PLICacheEngine(r)
        from repro.entropy.naive import NaiveEntropyEngine

        naive = NaiveEntropyEngine(r)
        for size in range(0, 6):
            for idx in itertools.combinations(range(5), size):
                assert pli.entropy_of(frozenset(idx)) == naive.entropy_of(
                    frozenset(idx)
                )

    def test_fast_path_vs_partition_products_approx(self):
        # Partition products accumulate different float error; agreement
        # is ~1e-12, asserted at the engines' documented tolerance.
        r = random_relation(5, 200, seed=8)
        fast = PLICacheEngine(r, block_size=2)
        slow = PLICacheEngine(r, block_size=2, counts_fast_path=False)
        for size in range(0, 6):
            for idx in itertools.combinations(range(5), size):
                assert fast.entropy_of(frozenset(idx)) == pytest.approx(
                    slow.entropy_of(frozenset(idx)), abs=1e-9
                )

    def test_oracle_kernel_stats_surface(self):
        r = random_relation(4, 100, seed=9)
        oracle = EntropyOracle(r)
        oracle.entropy(frozenset({0, 1}))
        stats = oracle.kernel_stats()
        assert stats["bincount"] + stats["sort"] + stats["hash"] >= 1

    def test_maimon_counters_include_kernels(self):
        r = random_relation(4, 200, seed=10)
        r.kernels.reset_stats()
        m = Maimon(r)
        m.mine_mvds(0.1)
        counters = m.counters()
        kernel = {k: v for k, v in counters.items() if k.startswith("kernel.")}
        assert kernel
        assert sum(kernel.values()) > 0

    def test_entropy_from_counts_matches_partition_entropy(self):
        r = random_relation(4, 150, seed=11)
        for idx in ((0,), (1, 2), (0, 1, 2, 3)):
            ids, n_groups = r.group_ids(idx)
            part = StrippedPartition.from_group_ids(ids, n_groups, r.n_rows)
            counts = np.bincount(ids, minlength=n_groups)
            assert entropy_from_counts(counts, r.n_rows) == part.entropy()

    def test_empty_relation_and_empty_set(self):
        r = Relation(np.zeros((0, 2), dtype=np.int64), ["a", "b"])
        assert r.kernels.entropy((0, 1)) == 0.0
        assert r.kernels.entropy(()) == 0.0
        assert len(r.group_sizes([0])) == 0
        full = random_relation(3, 10, seed=0)
        assert full.kernels.entropy(()) == 0.0
        assert np.array_equal(full.group_sizes([]), [10])

    def test_pli_fast_path_out_of_range_raises(self):
        r = random_relation(3, 20, seed=0)
        eng = PLICacheEngine(r)
        with pytest.raises(IndexError):
            eng.entropy_of(frozenset({0, 99}))


class TestGoldenMiningParity:
    """End-to-end: fast path and legacy path mine identical outputs."""

    @pytest.mark.parametrize("name,eps", [
        ("Bridges", 0.1),
        ("Breast_Cancer", 0.05),
        ("Abalone", 0.1),
    ])
    def test_minseps_mvds_schemas_identical(self, name, eps):
        relation = datasets.load(name, scale=1.0, max_rows=1200, max_cols=7)
        legacy_oracle = EntropyOracle(
            relation, PLICacheEngine(relation, counts_fast_path=False)
        )
        legacy = Maimon(relation, oracle=legacy_oracle)
        want = legacy.mine_mvds(eps)
        fast = Maimon(relation)
        got = fast.mine_mvds(eps)
        assert sorted(want.mvds) == sorted(got.mvds)
        assert {p: sorted(v) for p, v in want.min_seps.items()} == \
               {p: sorted(v) for p, v in got.min_seps.items()}
        want_schemas = [d.schema for d in legacy.discover(eps, limit=5)]
        got_schemas = [d.schema for d in fast.discover(eps, limit=5)]
        assert want_schemas == got_schemas
        # The fast run really ran counts-first.
        assert fast.counters()["kernel.bincount"] > 0
