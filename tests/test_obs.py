"""Tests for :mod:`repro.obs` — metrics registry, tracing, serve wiring.

Covers the observability contracts the rest of the system leans on:

* the registry's thread-safety, histogram bucket-edge semantics and
  Prometheus text exposition shape;
* span-tree nesting, aggregation-by-name and run-to-run determinism;
* the golden parity guarantee — artefacts with ``trace`` disabled are
  byte-identical to pre-trace output, and the trace block never leaks
  into provenance;
* the serve layer's ``/metrics`` endpoint, per-job timing fields,
  slow-request accounting and structured JSON request logs.
"""

import io
import json
import threading
import time

import pytest

from repro import api
from repro.api import DataSpec, EngineSpec, MineSpec, TaskRequest
from repro.core.maimon import Maimon
from repro.data.generators import paper_running_example
from repro.data.loaders import to_csv
from repro.obs.counters import flatten_counters
from repro.obs.logs import JsonLogger
from repro.obs.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    TimedLock,
)
from repro.obs.trace import ACTIVE, _NOOP, format_trace, span, start_trace


@pytest.fixture
def fig1_csv(tmp_path):
    path = str(tmp_path / "fig1.csv")
    to_csv(paper_running_example(), path)
    return path


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

class TestCounters:
    def test_inc_and_value(self):
        c = Counter("t_total", "help")
        c.inc()
        c.inc(2)
        assert c.value() == 3

    def test_labelled_children(self):
        c = Counter("t_total", "", labelnames=("task",))
        c.inc(task="mine")
        c.inc(task="mine")
        c.inc(task="schemas")
        assert c.value(task="mine") == 2
        assert c.value(task="schemas") == 1

    def test_wrong_label_set_is_an_error(self):
        c = Counter("t_total", "", labelnames=("task",))
        with pytest.raises(ValueError):
            c.inc(job="mine")
        with pytest.raises(ValueError):
            c.inc()

    def test_concurrent_increments_lose_nothing(self):
        c = Counter("t_total", "")
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == n_threads * per_thread

    def test_set_total_absorbs_external_tallies(self):
        c = Counter("t_total", "", labelnames=("event",))
        c.set_total(41, event="hits")
        c.set_total(42, event="hits")
        assert c.value(event="hits") == 42


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        # Prometheus semantics: le is an inclusive upper bound, so a
        # value exactly on a boundary lands in that bucket.
        h = Histogram("h", "", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(2.0001)
        h.observe(7.0)  # above every finite bucket: +Inf only
        lines = h.sample_lines()
        by_le = {}
        for line in lines:
            if "_bucket" in line:
                le = line.split('le="')[1].split('"')[0]
                by_le[le] = int(line.split()[-1])
        assert by_le == {"1": 1, "2": 2, "5": 3, "+Inf": 4}

    def test_sum_and_count(self):
        h = Histogram("h", "", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.5)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert snap["sum"] == pytest.approx(3.0)

    def test_buckets_are_sorted_and_required(self):
        h = Histogram("h", "", buckets=(5.0, 1.0, 2.0))
        assert h.buckets == (1.0, 2.0, 5.0)
        with pytest.raises(ValueError):
            Histogram("h2", "", buckets=())


class TestRegistryExposition:
    def test_families_render_headers_before_first_sample(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "first")
        reg.histogram("b_seconds", "second")
        text = reg.render()
        assert "# HELP a_total first" in text
        assert "# TYPE a_total counter" in text
        assert "# TYPE b_seconds histogram" in text
        assert text.endswith("\n")

    def test_full_exposition_shape(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "requests", labelnames=("task",))
        g = reg.gauge("depth", "queue depth")
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        c.inc(task="mine")
        g.set(3)
        h.observe(0.05)
        h.observe(0.5)
        lines = reg.render().splitlines()
        assert 'req_total{task="mine"} 1' in lines
        assert "depth 3" in lines
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "lat_seconds_sum 0.55" in lines
        assert "lat_seconds_count 2" in lines

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        c = reg.counter("e_total", "", labelnames=("name",))
        c.inc(name='we"ird\nname\\x')
        assert 'name="we\\"ird\\nname\\\\x"' in reg.render()

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", labelnames=("k",))
        b = reg.counter("x_total", "other help", labelnames=("k",))
        assert a is b

    def test_kind_and_label_mismatch_are_errors(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "")
        with pytest.raises(ValueError):
            reg.counter("x_total", "", labelnames=("task",))

    def test_callbacks_run_on_render(self):
        reg = MetricsRegistry()
        g = reg.gauge("swept", "")
        reg.register_callback(lambda: g.set(7))
        assert "swept 7" in reg.render()


class TestTimedLock:
    def test_plain_mutex_without_histogram(self):
        lock = TimedLock()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_wait_time_is_observed(self):
        h = Histogram("w_seconds", "", buckets=(0.001, 1.0))
        lock = TimedLock(h)
        hold_s = 0.05
        with lock:
            t = threading.Thread(target=lambda: lock.acquire() or lock.release())
            t.start()
            time.sleep(hold_s)
        t.join()
        snap = h.snapshot()
        # Two acquires total: the uncontended one (~0) and the waiter.
        assert snap["count"] == 2
        assert snap["sum"] >= hold_s * 0.5


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #

def _traced_workload():
    with start_trace("job") as trace:
        with span("plan"):
            pass
        for _ in range(3):
            with span("batch"):
                for _ in range(2):
                    with span("kernel"):
                        pass
    return trace.to_dict()


class TestTrace:
    def test_disabled_span_is_the_shared_noop(self):
        assert ACTIVE.trace is None
        assert span("anything") is _NOOP
        with span("anything"):
            pass  # must be harmless

    def test_nesting_and_aggregation_by_name(self):
        tree = _traced_workload()
        assert tree["name"] == "job" and tree["count"] == 1
        names = [c["name"] for c in tree["children"]]
        assert names == ["plan", "batch"]
        batch = tree["children"][1]
        assert batch["count"] == 3  # aggregated, not three nodes
        [kernel] = batch["children"]
        assert kernel["name"] == "kernel" and kernel["count"] == 6
        assert kernel["parent_id"] == batch["id"]
        assert batch["parent_id"] == tree["id"] == 0

    def test_deterministic_structure_across_runs(self):
        def strip_times(node):
            return {
                "name": node["name"],
                "id": node["id"],
                "parent_id": node["parent_id"],
                "count": node["count"],
                "children": [strip_times(c) for c in node["children"]],
            }

        assert strip_times(_traced_workload()) == strip_times(_traced_workload())

    def test_active_trace_restored_after_block(self):
        assert ACTIVE.trace is None
        with start_trace("outer") as outer:
            assert ACTIVE.trace is outer
            with start_trace("inner") as inner:
                assert ACTIVE.trace is inner
            assert ACTIVE.trace is outer
        assert ACTIVE.trace is None

    def test_total_time_accumulates(self):
        with start_trace("t") as trace:
            with span("work"):
                time.sleep(0.01)
        tree = trace.to_dict()
        [work] = tree["children"]
        assert work["total_ms"] >= 5
        assert tree["total_ms"] >= work["total_ms"]

    def test_format_trace_renders_tree_and_summary(self):
        text = format_trace(_traced_workload(), top=2)
        assert text.startswith("trace: job")
        assert "kernel" in text and "x6" in text
        assert "top self-time:" in text
        # top=2 caps the summary table.
        summary = text.split("top self-time:")[1]
        assert len([ln for ln in summary.splitlines() if ln.strip()]) == 2


# --------------------------------------------------------------------- #
# Flat counter namespace
# --------------------------------------------------------------------- #

class TestFlattenCounters:
    def test_pli_maimon_namespace(self, fig1):
        with Maimon(fig1) as m:
            m.mine_mvds(0.0)
            counters = m.counters()
        assert counters["oracle.queries"] > 0
        assert set(counters) >= {
            "oracle.queries", "oracle.evals",
            "engine.products", "engine.cache_hits", "engine.cache_misses",
            "engine.fast_entropies",
        }
        assert all("." in k for k in counters)
        assert "delta.patched" not in counters  # deltas not tracked

    def test_delta_group_appears_only_when_tracked(self, fig1):
        with Maimon(fig1, track_deltas=True) as m:
            counters = m.counters()
        assert {"delta.patched", "delta.rebuilt", "delta.dropped"} <= set(counters)

    def test_extra_mapping_is_merged(self, fig1_oracle):
        out = flatten_counters(fig1_oracle, extra={"delta.rebuilt": 5})
        assert out["delta.rebuilt"] == 5


# --------------------------------------------------------------------- #
# Trace knob: golden parity + provenance exclusion
# --------------------------------------------------------------------- #

class TestTraceParity:
    def test_disabled_artefact_has_no_trace_key(self, fig1_csv):
        result = api.run(TaskRequest(
            task="mine", spec=MineSpec(eps=0.0),
            engine=EngineSpec(), data=DataSpec(csv=fig1_csv),
        ))
        assert "trace" not in result.payload

    def test_traced_artefact_is_byte_identical_modulo_trace(self, fig1_csv):
        plain = dict(api.run(TaskRequest(
            task="mine", spec=MineSpec(eps=0.0),
            engine=EngineSpec(), data=DataSpec(csv=fig1_csv),
        )).payload)
        traced = dict(api.run(TaskRequest(
            task="mine", spec=MineSpec(eps=0.0),
            engine=EngineSpec(trace=True), data=DataSpec(csv=fig1_csv),
        )).payload)
        block = traced.pop("trace")
        assert block["name"] == "mine" and block["count"] == 1
        assert {c["name"] for c in block["children"]} >= {"mine", "serialize"}
        # "elapsed" is wall-clock and differs run to run regardless of
        # tracing; everything else must match byte for byte.
        plain.pop("elapsed")
        traced.pop("elapsed")
        assert json.dumps(plain, sort_keys=True) == \
               json.dumps(traced, sort_keys=True)

    def test_trace_excluded_from_provenance(self, fig1_csv):
        request = TaskRequest(
            task="mine", spec=MineSpec(eps=0.0),
            engine=EngineSpec(trace=True), data=DataSpec(csv=fig1_csv),
        )
        assert "trace" not in request.provenance()["engine"]
        result = api.run(request)
        assert "trace" not in result.payload["spec"]["engine"]

    def test_trace_validates_as_boolean(self):
        with pytest.raises(api.SpecError):
            EngineSpec(trace="yes").validate()
        with pytest.raises(api.SpecError):
            EngineSpec.from_request({"trace": "yes"})
        assert EngineSpec.from_request({"trace": True}).trace is True


# --------------------------------------------------------------------- #
# Serve wiring
# --------------------------------------------------------------------- #

CSV = """A,B,C,D
a1,b1,c1,d1
a1,b1,c2,d1
a2,b2,c1,d2
a2,b2,c2,d2
"""


@pytest.fixture()
def serve_stack():
    from repro.serve import MiningService, ServeClient, start_background

    log = io.StringIO()
    service = MiningService(
        slow_ms=0.0,  # every request is "slow": the counter must move
        logger=JsonLogger(stream=log, component="serve"),
    )
    server, _ = start_background(service)
    client = ServeClient(f"http://127.0.0.1:{server.server_port}")
    try:
        yield service, client, log
    finally:
        server.close()


class TestServeObservability:
    def test_metrics_endpoint_and_job_timings(self, serve_stack):
        service, client, log = serve_stack
        ds = client.upload_csv(text=CSV, name="obs")["dataset_id"]
        resp = client.mine(ds, eps=0.0)
        assert resp["status"] == "done"
        assert resp["queued_ms"] >= 0
        assert resp["running_ms"] >= 0

        text = client.metrics()
        # Every registered family appears, even sample-less ones.
        for family in service.metrics.names():
            assert f"# TYPE {family} " in text, family
        assert 'repro_requests_total{task="mine",status="done"} 1' in text
        assert "repro_session_lock_wait_seconds_count 1" in text
        assert "repro_sessions 1" in text
        # Per-session mining counters republished as labelled series.
        assert 'counter="oracle.queries"' in text

        # slow_ms=0 marks everything slow, on metrics and the log.
        assert 'repro_slow_requests_total{task="mine"} 1' in text
        events = [json.loads(line) for line in log.getvalue().splitlines()]
        kinds = [e["event"] for e in events]
        assert "request" in kinds and "slow_request" in kinds
        request_log = next(e for e in events if e["event"] == "request")
        assert request_log["request_id"] == resp["job_id"]
        assert request_log["task"] == "mine"
        assert request_log["status"] == "done"

    def test_healthz_reports_cache_occupancy(self, serve_stack):
        _, client, _ = serve_stack
        health = client.healthz()
        assert {"sessions", "capacity"} <= set(health["sessions"])
        assert {"datasets", "capacity"} <= set(health["registry"])

    def test_trace_roundtrips_over_http(self, serve_stack):
        _, client, _ = serve_stack
        ds = client.upload_csv(text=CSV, name="obs")["dataset_id"]
        plain = client.mine(ds, eps=0.0)["result"]
        traced = dict(client.mine(ds, eps=0.0, trace=True)["result"])
        block = traced.pop("trace")
        assert block["name"] == "mine"
        assert json.dumps(plain, sort_keys=True) == \
               json.dumps(traced, sort_keys=True)

    def test_session_cache_events_are_absorbed(self, serve_stack):
        _, client, _ = serve_stack
        ds = client.upload_csv(text=CSV, name="obs")["dataset_id"]
        client.mine(ds, eps=0.0)
        client.mine(ds, eps=0.0)  # second request reuses the warm session
        text = client.metrics()
        assert 'repro_session_cache_events_total{event="hits"} 1' in text
        assert 'repro_session_cache_events_total{event="misses"} 1' in text


class TestJsonLogger:
    def test_one_json_line_per_event(self):
        out = io.StringIO()
        log = JsonLogger(stream=out, component="test")
        log.info("started", port=80)
        log.warning("slow_request", running_ms=12.5)
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(ln) for ln in lines)
        assert first["event"] == "started" and first["port"] == 80
        assert first["component"] == "test" and first["level"] == "info"
        assert first["ts"].endswith("Z") or "+" in first["ts"]
        assert second["level"] == "warning"
