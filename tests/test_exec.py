"""Tests for the batched + parallel entropy execution subsystem."""

import itertools
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import TOL
from repro.core.minsep import mine_all_min_seps
from repro.entropy.naive import NaiveEntropyEngine
from repro.entropy.oracle import EntropyOracle, make_oracle
from repro.entropy.plicache import PLICacheEngine
from repro.exec.batch import BatchEntropyOracle
from repro.exec.persist import PersistentEntropyCache, relation_fingerprint
from repro.exec.plan import (
    estimated_cost,
    mi_entropy_sets,
    plan_entropy_requests,
    shard,
)
from repro.exec.pool import ParallelEvaluator
from repro.fd.tane import mine_fds
from tests.conftest import random_relation


def all_subsets(n, max_size=None):
    max_size = n if max_size is None else max_size
    for r in range(max_size + 1):
        yield from (frozenset(c) for c in itertools.combinations(range(n), r))


# --------------------------------------------------------------------- #
# Engine / oracle parity
# --------------------------------------------------------------------- #

class TestParity:
    """Naive engine, PLI engine and the batch oracle (serial and parallel)
    must agree within TOL on random relations (acceptance criterion)."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2000), rows=st.integers(2, 60))
    def test_engines_and_serial_batch_agree(self, seed, rows):
        r = random_relation(4, rows, seed=seed)
        naive = NaiveEntropyEngine(r)
        pli = PLICacheEngine(r, block_size=2)
        batch = BatchEntropyOracle(r, workers=1)
        sets = list(all_subsets(4))
        hs = batch.entropies(sets)
        for attrs in sets:
            expected = naive.entropy_of(attrs)
            assert pli.entropy_of(attrs) == pytest.approx(expected, abs=TOL)
            assert hs[attrs] == pytest.approx(expected, abs=TOL)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_parallel_batch_agrees(self, seed):
        r = random_relation(5, 200, seed=seed)
        serial = make_oracle(r)
        parallel = BatchEntropyOracle(r, workers=2)
        sets = list(all_subsets(5))
        try:
            hs = parallel.entropies(sets)
        finally:
            parallel.close()
        for attrs in sets:
            assert hs[attrs] == pytest.approx(serial.entropy(attrs), abs=TOL)

    def test_mutual_informations_match_serial_formula(self):
        r = random_relation(5, 120, seed=3)
        serial = make_oracle(r)
        batch = BatchEntropyOracle(r, workers=1)
        triples = [
            ({0}, {1}, {2}),
            ({0, 3}, {1}, ()),
            ({4}, {2, 3}, {0, 1}),
        ]
        got = batch.mutual_informations(triples)
        want = [serial.mutual_information(*t) for t in triples]
        assert got == pytest.approx(want, abs=TOL)

    def test_mining_identical_serial_vs_parallel(self):
        r = random_relation(6, 150, seed=11)
        serial = make_oracle(r)
        parallel = make_oracle(r, workers=2)
        try:
            assert mine_all_min_seps(parallel, 0.05) == mine_all_min_seps(serial, 0.05)
        finally:
            parallel.close()

    def test_drop_in_for_miner(self):
        from repro.core.miner import MVDMiner

        r = random_relation(4, 60, seed=2)
        oracle = BatchEntropyOracle(r, workers=1)
        result = MVDMiner(oracle).mine(0.0)  # isinstance(EntropyOracle) path
        assert result.pairs_done == result.pairs_total


# --------------------------------------------------------------------- #
# Query accounting (queries = logical requests, evals = engine work)
# --------------------------------------------------------------------- #

class TestAccounting:
    def test_queries_count_duplicates_evals_do_not(self):
        r = random_relation(3, 30, seed=0)
        o = BatchEntropyOracle(r)
        o.entropies([{0}, {0}, {1}, {0, 1}, {1}])
        assert o.queries == 5   # logical requests, duplicates included
        assert o.evals == 3     # engine saw each distinct set once
        o.entropies([{0}, {2}])
        assert o.queries == 7
        assert o.evals == 4     # {0} memoised, only {2} evaluated

    def test_base_oracle_same_semantics(self):
        r = random_relation(3, 30, seed=0)
        o = EntropyOracle(r)
        o.entropy({0})
        o.entropy({0})
        o.mutual_information({0}, {1})
        assert o.queries == 6   # 1 + 1 + 4
        assert o.evals == 4     # {0} once, then {1}, {0,1}, {} once each
        o.reset_stats()
        assert (o.queries, o.evals) == (0, 0)

    def test_prefetch_counts_no_queries(self):
        r = random_relation(4, 50, seed=1)
        o = BatchEntropyOracle(r, workers=2)
        try:
            n = o.prefetch(all_subsets(4, 2))
            assert n > 0
            assert o.queries == 0
            assert o.evals == n
            # Prefetched sets now serve logical queries from the memo.
            o.entropy({0, 1})
            assert o.queries == 1
            assert o.evals == n
        finally:
            o.close()

    def test_serial_prefetch_is_noop(self):
        r = random_relation(3, 20, seed=2)
        o = BatchEntropyOracle(r, workers=1)
        assert o.prefetch([{0}, {1}]) == 0
        assert o.evals == 0
        assert not o.prefers_batches


# --------------------------------------------------------------------- #
# Planner
# --------------------------------------------------------------------- #

class TestPlan:
    def test_dedupe_and_containment_order(self):
        plan = plan_entropy_requests([{2, 1}, {0}, {1, 2}, {1}, {0, 1, 2}, {0}])
        assert plan.logical == 6
        assert plan.unique == (
            frozenset({0}),
            frozenset({1}),
            frozenset({1, 2}),
            frozenset({0, 1, 2}),
        )
        assert plan.dedup_savings == 2

    def test_shard_covers_in_order_and_balances(self):
        sets = [frozenset(range(k)) for k in range(1, 30)]
        shards = shard(sets, 4)
        assert [s for piece in shards for s in piece] == sets
        assert 1 <= len(shards) <= 4
        costs = [sum(estimated_cost(s) for s in piece) for piece in shards]
        assert max(costs) <= 2 * min(costs)

    def test_shard_degenerate(self):
        assert shard([], 4) == []
        assert shard([frozenset({1})], 4) == [[frozenset({1})]]

    def test_mi_entropy_sets(self):
        xy, xz, xyz, x = mi_entropy_sets({1}, {2}, {0})
        assert (xy, xz, xyz, x) == (
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({0, 1, 2}),
            frozenset({0}),
        )


# --------------------------------------------------------------------- #
# Process pool
# --------------------------------------------------------------------- #

class TestPool:
    def test_pool_entropies_match_serial(self):
        r = random_relation(5, 150, seed=4)
        sets = list(all_subsets(5, 3))
        with ParallelEvaluator(r, workers=2) as pool:
            got = pool.entropies(sets)
        eng = NaiveEntropyEngine(r)
        for attrs in sets:
            assert got[attrs] == pytest.approx(eng.entropy_of(attrs), abs=TOL)

    def test_pool_g3_match_serial(self):
        from repro.fd.measures import g3_error

        r = random_relation(4, 80, seed=5)
        pairs = [((0,), 1), ((0, 2), 3), ((), 2)]
        with ParallelEvaluator(r, workers=2) as pool:
            got = pool.g3_errors(pairs)
        for lhs, rhs in pairs:
            assert got[(lhs, rhs)] == pytest.approx(
                g3_error(r, lhs, rhs), abs=1e-12
            )

    def test_tane_parallel_matches_serial(self):
        r = random_relation(5, 70, seed=6)
        assert mine_fds(r, workers=2) == mine_fds(r)

    def test_serial_evaluator_uses_no_pool(self):
        r = random_relation(3, 40, seed=7)
        pool = ParallelEvaluator(r, workers=1)
        pool.entropies([frozenset({0, 1})])
        assert pool._pool is None
        assert pool.serial_batches == 1


# --------------------------------------------------------------------- #
# Persistence
# --------------------------------------------------------------------- #

class TestPersist:
    def test_fingerprint_sensitivity(self):
        r1 = random_relation(3, 40, seed=8)
        r2 = random_relation(3, 40, seed=9)
        assert relation_fingerprint(r1) == relation_fingerprint(r1)
        assert relation_fingerprint(r1) != relation_fingerprint(r2)
        assert relation_fingerprint(r1) != relation_fingerprint(r1, params=("pli", 2))

    def test_cache_round_trip(self, tmp_path):
        r = random_relation(3, 40, seed=8)
        cache = PersistentEntropyCache(r, cache_dir=str(tmp_path))
        cache.put(frozenset({0, 1}), 1.25)
        cache.flush()
        reloaded = PersistentEntropyCache(r, cache_dir=str(tmp_path))
        assert reloaded.get(frozenset({0, 1})) == 1.25
        assert reloaded.get(frozenset({2})) is None

    def test_warm_oracle_skips_engine(self, tmp_path):
        r = random_relation(4, 60, seed=10)
        sets = list(all_subsets(4))
        first = BatchEntropyOracle(r, persist=True, cache_dir=str(tmp_path))
        hs1 = first.entropies(sets)
        first.close()
        assert first.evals > 0
        second = BatchEntropyOracle(r, persist=True, cache_dir=str(tmp_path))
        hs2 = second.entropies(sets)
        second.close()
        assert second.evals == 0
        assert second.persist_hits == len([s for s in sets])
        assert hs2 == pytest.approx(hs1, abs=TOL)

    def test_cache_file_is_json(self, tmp_path):
        r = random_relation(3, 40, seed=8)
        o = BatchEntropyOracle(r, persist=True, cache_dir=str(tmp_path))
        o.entropies([{0}, {1, 2}])
        o.close()
        files = [f for f in os.listdir(tmp_path) if f.endswith(".json")]
        assert len(files) == 1
        payload = json.loads((tmp_path / files[0]).read_text())
        assert payload["fingerprint"] == relation_fingerprint(
            r, params=("PLICacheEngine", 10, 4096)
        )
        assert len(payload["entropies"]) == 2


# --------------------------------------------------------------------- #
# make_oracle wiring
# --------------------------------------------------------------------- #

class TestMakeOracle:
    def test_serial_default_unchanged(self, fig1):
        o = make_oracle(fig1)
        assert type(o) is EntropyOracle

    def test_workers_or_persist_select_batch(self, fig1, tmp_path):
        o = make_oracle(fig1, workers=2)
        assert isinstance(o, BatchEntropyOracle)
        o.close()
        o = make_oracle(fig1, persist=True, cache_dir=str(tmp_path))
        assert isinstance(o, BatchEntropyOracle)
        o.close()
