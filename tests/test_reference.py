"""Sanity tests for the brute-force reference module itself."""

import math


from repro.core.mvd import MVD
from repro.reference import (
    all_standard_mvds,
    entropy_by_counting,
    full_mvds_with_key,
    j_by_counting,
    minimal_separators,
    set_partitions,
)
from tests.conftest import random_relation


class TestSetPartitions:
    def test_bell_numbers(self):
        # B_1..B_5 = 1, 2, 5, 15, 52.
        for n, bell in [(1, 1), (2, 2), (3, 5), (4, 15), (5, 52)]:
            assert sum(1 for _ in set_partitions(list(range(n)))) == bell

    def test_empty(self):
        assert list(set_partitions([])) == [[]]

    def test_blocks_partition_input(self):
        for blocks in set_partitions([1, 2, 3, 4]):
            flat = sorted(x for b in blocks for x in b)
            assert flat == [1, 2, 3, 4]


class TestEntropyByCounting:
    def test_uniform(self):
        r = random_relation(1, 16, seed=0, max_domain=2)
        h = entropy_by_counting(r, [0])
        assert 0.0 <= h <= 1.0

    def test_log_n_upper_bound(self):
        r = random_relation(3, 20, seed=1)
        assert entropy_by_counting(r, [0, 1, 2]) <= math.log2(20) + 1e-9


class TestMvdEnumeration:
    def test_standard_mvds_on_fig1(self, fig1):
        out = all_standard_mvds(fig1, 0.0)
        assert MVD({0}, [{5}, {1, 2, 3, 4}]) in out  # A ->> F | BCDE
        # Every output is standard and covers Omega.
        for m in out:
            assert m.is_standard
            assert m.attributes == frozenset(range(6))

    def test_full_mvds_are_full(self, fig1):
        for phi in full_mvds_with_key(fig1, frozenset({0, 3}), 0.0):
            assert j_by_counting(fig1, phi) <= 1e-9

    def test_minimal_separators_minimal(self, fig1):
        seps = minimal_separators(fig1, (4, 5), 0.0)  # (E, F)
        for s in seps:
            for other in seps:
                assert not (other < s)
