"""Tests for minimal hypergraph transversal enumeration (Berge)."""

from hypothesis import given, settings, strategies as st

from repro.hypergraph.transversal import (
    TransversalEnumerator,
    is_minimal_transversal,
    is_transversal,
    minimal_transversals,
    minimize_sets,
)
from repro.reference import brute_minimal_transversals


def fs(*xs):
    return frozenset(xs)


class TestMinimizeSets:
    def test_removes_supersets(self):
        out = minimize_sets([fs(1), fs(1, 2), fs(3, 4), fs(3)])
        assert set(out) == {fs(1), fs(3)}

    def test_deduplicates(self):
        assert minimize_sets([fs(1, 2), fs(2, 1)]) == [fs(1, 2)]

    def test_empty_set_dominates(self):
        assert minimize_sets([fs(), fs(1)]) == [fs()]


class TestPredicates:
    def test_is_transversal(self):
        edges = [fs(1, 2), fs(2, 3)]
        assert is_transversal(fs(2), edges)
        assert is_transversal(fs(1, 3), edges)
        assert not is_transversal(fs(1), edges)

    def test_is_minimal_transversal(self):
        edges = [fs(1, 2), fs(2, 3)]
        assert is_minimal_transversal(fs(2), edges)
        assert is_minimal_transversal(fs(1, 3), edges)
        assert not is_minimal_transversal(fs(1, 2), edges)


class TestStaticEnumeration:
    def test_triangle(self):
        edges = [fs(1, 2), fs(2, 3), fs(1, 3)]
        out = minimal_transversals(edges)
        assert set(out) == {fs(1, 2), fs(2, 3), fs(1, 3)}

    def test_disjoint_edges(self):
        out = minimal_transversals([fs(1, 2), fs(3, 4)])
        assert set(out) == {fs(1, 3), fs(1, 4), fs(2, 3), fs(2, 4)}

    def test_no_edges(self):
        assert minimal_transversals([]) == [fs()]

    def test_empty_edge_kills_everything(self):
        assert minimal_transversals([fs(1), fs()]) == []

    def test_matches_brute_force_examples(self):
        cases = [
            [fs(0, 1, 2), fs(2, 3), fs(0, 3)],
            [fs(0), fs(1), fs(2)],
            [fs(0, 1), fs(0, 1)],
            [fs(0, 1, 2, 3)],
        ]
        for edges in cases:
            assert set(minimal_transversals(edges)) == set(
                brute_minimal_transversals(edges)
            )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.frozensets(st.integers(0, 5), min_size=1, max_size=4),
            min_size=1,
            max_size=5,
        )
    )
    def test_matches_brute_force_property(self, edges):
        assert set(minimal_transversals(edges)) == set(
            brute_minimal_transversals(edges)
        )


class TestIncrementalEnumerator:
    def test_pending_queue_hands_out_once(self):
        enum = TransversalEnumerator()
        assert enum.pop_unprocessed() == fs()  # empty hypergraph
        assert enum.pop_unprocessed() is None
        enum.add_edge(fs(1, 2))
        got = set()
        while (d := enum.pop_unprocessed()) is not None:
            got.add(d)
        assert got == {fs(1), fs(2)}

    def test_add_edge_invalidates_stale_pending(self):
        enum = TransversalEnumerator()
        enum.add_edge(fs(1, 2))
        first = enum.pop_unprocessed()
        assert first in {fs(1), fs(2)}
        enum.add_edge(fs(3))
        rest = set()
        while (d := enum.pop_unprocessed()) is not None:
            rest.add(d)
        # The final hypergraph {12, 3} has minimal transversals {1,3}, {2,3};
        # `first` is stale and must not suppress either of them.
        assert rest == enum.transversals == {fs(1, 3), fs(2, 3)}

    def test_processed_never_repeats(self):
        enum = TransversalEnumerator()
        enum.add_edge(fs(1, 2))
        seen = []
        while (d := enum.pop_unprocessed()) is not None:
            seen.append(d)
        enum.add_edge(fs(1, 3))
        while (d := enum.pop_unprocessed()) is not None:
            seen.append(d)
        assert len(seen) == len(set(seen))

    def test_incremental_matches_static(self):
        edges = [fs(0, 1), fs(1, 2, 3), fs(0, 3), fs(2, 4)]
        enum = TransversalEnumerator()
        for e in edges:
            enum.add_edge(e)
        assert enum.transversals == set(brute_minimal_transversals(edges))
