"""End-to-end tests for the Maimon facade."""

import pytest

from repro.core.budget import SearchBudget
from repro.core.maimon import Maimon
from repro.core.schema import Schema


class TestFig1EndToEnd:
    def test_discover_exact_schemas(self, fig1):
        maimon = Maimon(fig1)
        out = maimon.discover(0.0)
        assert out
        for ds in out:
            assert ds.j_measure == pytest.approx(0.0, abs=1e-6)
            assert ds.quality.spurious_pct == pytest.approx(0.0, abs=1e-9)
            assert ds.schema.attributes == frozenset(range(6))

    def test_mvd_cache_reused(self, fig1):
        maimon = Maimon(fig1)
        r1 = maimon.mine_mvds(0.0)
        r2 = maimon.mine_mvds(0.0)
        assert r1 is r2

    def test_budgeted_run_not_cached(self, fig1):
        maimon = Maimon(fig1)
        budget = SearchBudget(max_steps=1).start()
        budget.tick()
        partial = maimon.mine_mvds(0.1, budget=budget)
        assert partial.timed_out
        fresh = maimon.mine_mvds(0.1)
        assert not fresh.timed_out
        assert fresh.n_mvds >= partial.n_mvds

    def test_limit(self, fig1):
        maimon = Maimon(fig1)
        assert len(maimon.discover(0.0, limit=3)) == 3

    def test_max_j_filter(self, fig1_red):
        maimon = Maimon(fig1_red)
        eps = 0.4
        strict = maimon.discover(eps, max_j=eps)
        for ds in strict:
            assert ds.j_measure <= eps + 1e-9

    def test_discovered_schema_format(self, fig1):
        maimon = Maimon(fig1)
        ds = maimon.discover(0.0, limit=1)[0]
        text = ds.format(fig1.columns)
        assert "J=" in text and "S=" in text and "E=" in text

    def test_without_spurious(self, fig1):
        maimon = Maimon(fig1)
        ds = maimon.discover(0.0, limit=1, with_spurious=False)[0]
        assert ds.quality.spurious_pct is None


class TestRedTupleStory:
    """Section 2's narrative, end to end — with one correction.

    The paper's prose says that after adding the red tuple "the first two
    MVDs no longer hold, only A ->> F|BCDE still holds".  Direct computation
    (and the materialised join, see test_spurious.py) shows BD ->> E|ACF
    indeed fails, but AD ->> CF|BE *still holds exactly*: in the only
    non-singleton AD-group (a1, d2), the CF projection is constant.  The
    tests below assert the mathematically verified behaviour.
    """

    def test_bd_no_longer_a_separator(self, fig1_red):
        maimon = Maimon(fig1_red)
        exact = maimon.mine_mvds(0.0)
        assert all(phi.key != frozenset({1, 3}) for phi in exact.mvds)

    def test_fig1_schema_not_exact_but_refinement_is(self, fig1_red):
        maimon = Maimon(fig1_red)
        paper_schema = Schema(
            [
                frozenset({0, 5}),
                frozenset({0, 2, 3}),
                frozenset({0, 1, 3}),
                frozenset({1, 3, 4}),
            ]
        )
        assert paper_schema.j_measure(maimon.oracle) > 0.01
        exact_schemas = {ds.schema for ds in maimon.discover(0.0)}
        # AD ->> B|C|E|F still holds, so {ABD, ACD, ADE, AF} is exact.
        assert (
            Schema(
                [
                    frozenset({0, 1, 3}),
                    frozenset({0, 2, 3}),
                    frozenset({0, 3, 4}),
                    frozenset({0, 5}),
                ]
            )
            in exact_schemas
        )

    def test_approximation_recovers_paper_schema(self, fig1_red):
        """With eps > 0 the original Fig. 1 schema becomes admissible."""
        maimon = Maimon(fig1_red)
        paper_schema = Schema(
            [
                frozenset({0, 5}),
                frozenset({0, 2, 3}),
                frozenset({0, 1, 3}),
                frozenset({1, 3, 4}),
            ]
        )
        j = paper_schema.j_measure(maimon.oracle)
        assert 0 < j < 1.0
        # Its support MVDs are all eps-MVDs for eps = j (Corollary 5.2(1)).
        from repro.core.measures import satisfies

        for phi in paper_schema.support():
            assert satisfies(maimon.oracle, phi, j)


class TestEngines:
    def test_naive_engine_same_results(self, fig1):
        schemas_pli = {ds.schema for ds in Maimon(fig1, engine="pli").discover(0.0)}
        schemas_naive = {ds.schema for ds in Maimon(fig1, engine="naive").discover(0.0)}
        assert schemas_pli == schemas_naive

    def test_nursery_no_exact_decomposition(self, nursery_small):
        """Fig. 10(a): at J = 0 Nursery admits no decomposition (m = 1).

        The sampled subset keeps the class attribute's functional link to
        all eight inputs, so no exact MVD can exist."""
        maimon = Maimon(nursery_small)
        result = maimon.mine_mvds(0.0)
        assert result.n_mvds == 0
        out = maimon.discover(0.0)
        assert len(out) == 1
        assert out[0].schema.m == 1


class TestServingHooks:
    """The reuse/lifecycle hooks long-lived holders (repro.serve) rely on."""

    def test_counters_and_reset(self, fig1):
        with Maimon(fig1) as maimon:
            maimon.mine_mvds(0.0)
            counters = maimon.counters()
            assert counters["oracle.queries"] > 0
            assert 0 < counters["oracle.evals"] <= counters["oracle.queries"]
            # One flat namespace: every key is "group.counter".
            assert all("." in key for key in counters)
            maimon.reset_counters()
            reset = maimon.counters()
            assert set(reset) >= {"oracle.queries", "oracle.evals"}
            assert all(v == 0 for v in reset.values())
            # The memo survives the counter reset: re-mining is all hits.
            maimon.clear_cache()
            maimon.mine_mvds(0.0)
            after = maimon.counters()
            assert after["oracle.queries"] > 0 and after["oracle.evals"] == 0

    def test_clear_cache_forces_remine(self, fig1):
        maimon = Maimon(fig1)
        r1 = maimon.mine_mvds(0.0)
        maimon.clear_cache()
        r2 = maimon.mine_mvds(0.0)
        assert r1 is not r2
        assert r1.mvds == r2.mvds

    def test_budgeted_call_reuses_complete_cached_result(self, fig1):
        maimon = Maimon(fig1)
        full = maimon.mine_mvds(0.0)
        budget = SearchBudget(max_seconds=0).start()
        assert maimon.mine_mvds(0.0, budget=budget) is full
