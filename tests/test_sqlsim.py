"""Tests for the mini in-memory relational engine."""

import pytest

from repro.sqlsim.engine import Database, Table, hash_combine


@pytest.fixture
def people():
    return Table(
        "people",
        ["id", "city"],
        [(1, "sea"), (2, "sfo"), (3, "sea"), (4, "nyc")],
    )


@pytest.fixture
def visits():
    return Table(
        "visits",
        ["id", "place"],
        [(1, "park"), (1, "cafe"), (3, "park"), (5, "gym")],
    )


class TestTableBasics:
    def test_schema_checked(self):
        with pytest.raises(ValueError, match="fields"):
            Table("t", ["a", "b"], [(1,)])
        with pytest.raises(ValueError, match="duplicate"):
            Table("t", ["a", "a"])

    def test_len_and_columns(self, people):
        assert len(people) == 4
        assert people.col("city") == 1
        with pytest.raises(KeyError, match="no column"):
            people.col("nope")

    def test_column_values(self, people):
        assert people.column_values("city") == ["sea", "sfo", "sea", "nyc"]

    def test_row_dicts(self, people):
        first = next(iter(people.row_dicts()))
        assert first == {"id": 1, "city": "sea"}


class TestOperators:
    def test_where(self, people):
        sea = people.where(lambda r: r["city"] == "sea")
        assert len(sea) == 2

    def test_project_computed(self, people):
        out = people.project({"tag": lambda r: f"{r['id']}@{r['city']}"})
        assert out.columns == ("tag",)
        assert out.rows[0] == ("1@sea",)

    def test_select_columns(self, people):
        out = people.select_columns(["city"])
        assert out.columns == ("city",)
        assert len(out) == 4  # duplicates kept

    def test_join_matches(self, people, visits):
        out = people.join(visits, on="id")
        assert set(out.columns) == {"id_a", "city_a", "id_b", "place_b"}
        # ids 1 (x2 visits) and 3 (x1) match; 2, 4, 5 don't.
        assert len(out) == 3
        ids = out.column_values("id_a")
        assert sorted(ids) == [1, 1, 3]

    def test_join_side_order_stable(self, people, visits):
        """Self columns always get the first suffix, regardless of which
        side the hash build picks."""
        small = Table("small", ["id", "x"], [(1, "u")])
        out_a = small.join(people, on="id")
        assert out_a.columns[:2] == ("id_a", "x_a")
        out_b = people.join(small, on="id")
        assert out_b.columns[:2] == ("id_a", "city_a")
        assert out_b.rows[0][:2] == (1, "sea")

    def test_group_count_having(self, people):
        grp = people.select_columns(["city"]).group_count("city", having_min=2)
        assert dict(grp.rows) == {"sea": 2}

    def test_group_count_all(self, people):
        grp = people.select_columns(["city"]).group_count("city")
        assert dict(grp.rows) == {"sea": 2, "sfo": 1, "nyc": 1}

    def test_semijoin(self, people, visits):
        out = people.semijoin(visits, on="id")
        assert sorted(out.column_values("id")) == [1, 3]

    def test_distinct(self):
        t = Table("t", ["a"], [(1,), (1,), (2,)])
        assert len(t.distinct()) == 2


class TestDatabase:
    def test_create_get_drop(self, people):
        db = Database()
        db.create(people)
        assert "people" in db
        assert db.get("people") is people
        with pytest.raises(ValueError, match="already exists"):
            db.create(people)
        db.drop("people")
        assert "people" not in db
        with pytest.raises(KeyError, match="no table"):
            db.get("people")

    def test_create_or_replace(self, people):
        db = Database()
        db.create_or_replace(people)
        db.create_or_replace(people)
        assert db.table_names() == ["people"]

    def test_total_rows(self, people, visits):
        db = Database()
        db.create(people)
        db.create(visits)
        assert db.total_rows() == 8


class TestHashCombine:
    def test_deterministic(self):
        assert hash_combine(1, "x") == hash_combine(1, "x")
        assert hash_combine(1, 2) != hash_combine(2, 1)
