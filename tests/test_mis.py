"""Tests for maximal independent set enumeration (JPY)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph.mis import (
    greedy_complete,
    is_independent,
    is_maximal_independent,
    maximal_independent_sets,
)
from repro.reference import brute_maximal_independent_sets


def adjacency_from_edges(n, edges):
    adj = [set() for _ in range(n)]
    for u, v in edges:
        if u != v:
            adj[u].add(v)
            adj[v].add(u)
    return adj


class TestGreedyComplete:
    def test_empty_graph(self):
        adj = adjacency_from_edges(3, [])
        assert greedy_complete((), 3, adj) == frozenset({0, 1, 2})

    def test_path_graph(self):
        adj = adjacency_from_edges(3, [(0, 1), (1, 2)])
        assert greedy_complete((), 3, adj) == frozenset({0, 2})
        assert greedy_complete({1}, 3, adj) == frozenset({1})

    def test_rejects_dependent_seed(self):
        adj = adjacency_from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            greedy_complete({0, 1}, 2, adj)


class TestEnumeration:
    def test_empty_graph_single_mis(self):
        assert list(maximal_independent_sets(0, [])) == [frozenset()]

    def test_no_edges(self):
        adj = adjacency_from_edges(3, [])
        assert list(maximal_independent_sets(3, adj)) == [frozenset({0, 1, 2})]

    def test_triangle(self):
        adj = adjacency_from_edges(3, [(0, 1), (1, 2), (0, 2)])
        out = set(maximal_independent_sets(3, adj))
        assert out == {frozenset({0}), frozenset({1}), frozenset({2})}

    def test_path4(self):
        adj = adjacency_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        out = set(maximal_independent_sets(4, adj))
        assert out == {
            frozenset({0, 2}),
            frozenset({0, 3}),
            frozenset({1, 3}),
        }

    def test_lexicographic_order(self):
        adj = adjacency_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        out = [tuple(sorted(s)) for s in maximal_independent_sets(4, adj)]
        assert out == sorted(out)

    def test_each_output_is_maximal(self):
        adj = adjacency_from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])
        for s in maximal_independent_sets(6, adj):
            assert is_maximal_independent(s, 6, adj)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 7),
        edge_bits=st.integers(0, 2**21 - 1),
    )
    def test_matches_brute_force(self, n, edge_bits):
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = [p for k, p in enumerate(pairs) if (edge_bits >> k) & 1]
        adj = adjacency_from_edges(n, edges)
        got = sorted(maximal_independent_sets(n, adj), key=sorted)
        expected = sorted(brute_maximal_independent_sets(n, adj), key=sorted)
        assert got == expected


class TestPredicates:
    def test_is_independent(self):
        adj = adjacency_from_edges(3, [(0, 1)])
        assert is_independent({0, 2}, adj)
        assert not is_independent({0, 1}, adj)

    def test_is_maximal_independent(self):
        adj = adjacency_from_edges(3, [(0, 1)])
        assert is_maximal_independent({0, 2}, 3, adj)
        assert not is_maximal_independent({0}, 3, adj)  # can add 2
        assert not is_maximal_independent({0, 1}, 3, adj)  # not independent
