"""End-to-end parity: miner output is identical across the representation
change from frozensets to bitmask attribute sets.

``tests/data/lattice_parity_golden.json`` was captured by running the
pre-``repro.lattice`` (frozenset-era) implementation — commit 96ed8e5 — on
two seeded datasets, recording every minimal separator, every mined full
MVD, the discovered schemas with their exact J-measures, and the logical
``queries``/``evals`` counter values.  These tests recompute all of it on
the current code and require bit-identical agreement, which is the
acceptance bar for the bitmask refactor: same separators, same MVDs, same
schemas, same query accounting.
"""

import json
import os

import pytest

from repro.core.maimon import Maimon
from repro.core.minsep import mine_all_min_seps
from repro.data.generators import decomposable, markov_tree
from repro.entropy.oracle import make_oracle

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "lattice_parity_golden.json")


def _dataset(name):
    if name == "markov8":
        return markov_tree(n_cols=8, n_rows=400, seed=7, noise=0.02, name="markov8")
    return decomposable(
        [["A", "B", "C"], ["B", "C", "D"], ["C", "E"], ["E", "F"]],
        n_rows=300,
        seed=3,
        noise_rows=25,
        name="decomp6",
    )


with open(GOLDEN_PATH) as f:
    GOLDEN = json.load(f)


@pytest.mark.parametrize("name", sorted(GOLDEN))
class TestLatticeParity:
    def test_min_seps_and_query_counts(self, name):
        g = GOLDEN[name]
        r = _dataset(name)
        assert (r.n_rows, r.n_cols) == (g["n_rows"], g["n_cols"])
        oracle = make_oracle(r)
        seps = mine_all_min_seps(oracle, g["eps"])
        got = {f"{a},{b}": [sorted(s) for s in v] for (a, b), v in seps.items()}
        assert got == g["min_seps"]
        # Logical query accounting must not drift with the representation.
        assert oracle.queries == g["minsep_queries"]
        assert oracle.evals == g["minsep_evals"]

    def test_full_mvds_and_schemas(self, name):
        g = GOLDEN[name]
        maimon = Maimon(_dataset(name))
        mined = maimon.mine_mvds(g["eps"])
        assert [phi.format() for phi in mined.mvds] == g["mvds"]
        assert mined.entropy_queries == g["miner_queries"]
        schemas = maimon.discover(g["eps"], limit=8, with_spurious=False)
        got = [
            {"schema": ds.schema.format(), "j": round(ds.j_measure, 9)}
            for ds in schemas
        ]
        assert got == g["schemas"]
