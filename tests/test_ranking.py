"""Tests for ranked schema enumeration."""

import pytest

from repro.core.maimon import Maimon
from repro.core.ranking import (
    OBJECTIVES,
    balanced,
    by_accuracy,
    by_j,
    by_relations,
    by_savings,
    by_width,
    rank_schemas,
)


@pytest.fixture(scope="module")
def fig1_maimon(request):
    from repro.data.generators import paper_running_example

    return Maimon(paper_running_example())


class TestObjectives:
    def test_registry_complete(self):
        assert set(OBJECTIVES) == {
            "relations",
            "width",
            "savings",
            "accuracy",
            "j",
            "balanced",
        }

    def test_objective_directions(self, fig1_maimon):
        ds = fig1_maimon.discover(0.0, limit=1)[0]
        assert by_relations(ds) == ds.quality.n_relations
        assert by_width(ds) == -ds.quality.width
        assert by_savings(ds) == ds.quality.savings_pct
        assert by_accuracy(ds) == -(ds.quality.spurious_pct or 0.0)
        assert by_j(ds) == -ds.j_measure
        assert balanced(ds) == pytest.approx(
            ds.quality.n_relations * 10
            + ds.quality.savings_pct
            - 0.5 * (ds.quality.spurious_pct or 0.0)
        )


class TestRankSchemas:
    def test_scores_descending(self, fig1_maimon):
        ranked = rank_schemas(fig1_maimon, 0.0, k=5)
        scores = [rs.score for rs in ranked]
        assert scores == sorted(scores, reverse=True)
        assert [rs.rank for rs in ranked] == list(range(1, len(ranked) + 1))

    def test_k_respected(self, fig1_maimon):
        assert len(rank_schemas(fig1_maimon, 0.0, k=2)) == 2

    def test_relations_objective_tops_most_decomposed(self, fig1_maimon):
        ranked = rank_schemas(fig1_maimon, 0.0, k=3, objective="relations")
        assert ranked[0].discovered.schema.m == max(
            rs.discovered.schema.m for rs in ranked
        )

    def test_width_objective_minimises_width(self, fig1_maimon):
        ranked = rank_schemas(fig1_maimon, 0.0, k=10, objective="width")
        widths = [rs.discovered.quality.width for rs in ranked]
        assert widths[0] == min(widths)

    def test_custom_callable(self, fig1_maimon):
        ranked = rank_schemas(
            fig1_maimon, 0.0, k=3, objective=lambda ds: -ds.schema.m
        )
        ms = [rs.discovered.schema.m for rs in ranked]
        assert ms == sorted(ms)

    def test_unknown_objective(self, fig1_maimon):
        with pytest.raises(ValueError, match="unknown objective"):
            rank_schemas(fig1_maimon, 0.0, objective="nope")

    def test_without_spurious(self, fig1_maimon):
        ranked = rank_schemas(
            fig1_maimon, 0.0, k=3, objective="width", with_spurious=False
        )
        assert all(rs.discovered.quality.spurious_pct is None for rs in ranked)
