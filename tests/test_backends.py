"""repro.backends: stores, chunked kernels, parity and wiring.

The backend seam's whole contract is *bit-identity*: a relation mined
off a store directory (or any other backend) must produce the same
entropies, the same fingerprint and the same artefacts as the in-memory
path.  These tests pin that contract at every layer — raw merge
kernels, the chunk-stream driver, the store round trip, DataSpec/CLI/
serve wiring, and the golden datasets end to end.
"""

from __future__ import annotations

import itertools
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import api
from repro import kernels as kern
from repro.api import DataSpec, EngineSpec, MineSpec, SpecError, TaskRequest
from repro.backends import (
    BackendRelation,
    ChunkedGroupCounter,
    MmapBackend,
    NumpyBackend,
    StoreError,
    have_duckdb,
    ingest_csv,
    narrow_dtype,
    open_backend,
    open_store_relation,
    read_manifest,
    write_store,
)
from repro.data import datasets
from repro.data.generators import markov_tree
from repro.data.loaders import from_csv
from repro.data.relation import Relation
from repro.exec import persist
from repro.kernels import count as kcount
from repro.kernels import dispatch


def subsets(n_cols, max_size=None):
    top = max_size or n_cols
    return [
        idx
        for size in range(1, top + 1)
        for idx in itertools.combinations(range(n_cols), size)
    ]


@pytest.fixture
def rel():
    return markov_tree(5, 400, seed=2, name="backend-test")


@pytest.fixture
def store(rel, tmp_path):
    path = str(tmp_path / "rel.store")
    write_store(rel, path)
    return path


# --------------------------------------------------------------------- #
# Merge kernels (kernels/count.py)
# --------------------------------------------------------------------- #

class TestMergeKernels:
    def test_merge_key_counts_matches_unique(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 50, 300).astype(np.int64)
        b = rng.integers(20, 90, 200).astype(np.int64)
        ka, ca = np.unique(a, return_counts=True)
        kb, cb = np.unique(b, return_counts=True)
        keys, counts = kcount.merge_key_counts(None, None, ka, ca)
        keys, counts = kcount.merge_key_counts(keys, counts, kb, cb)
        want_k, want_c = np.unique(np.concatenate([a, b]), return_counts=True)
        assert np.array_equal(keys, want_k)
        assert np.array_equal(counts, want_c)

    def test_lex_row_counts_is_lexicographic(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 4, (500, 3)).astype(np.int64)
        keys, counts = kcount.lex_row_counts(rows)
        # Ascending lexicographic == ascending mixed-radix over the same
        # radix vector: compose and compare against the sort path.
        composed = (keys[:, 0] * 4 + keys[:, 1]) * 4 + keys[:, 2]
        assert np.all(np.diff(composed) > 0)
        flat = (rows[:, 0] * 4 + rows[:, 1]) * 4 + rows[:, 2]
        want_k, want_c = np.unique(flat, return_counts=True)
        assert np.array_equal(composed, want_k)
        assert np.array_equal(counts, want_c)

    def test_chunked_drivers_match_whole_array(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 1000, 5000).astype(np.int64)
        want = np.unique(keys, return_counts=True)[1]  # ascending key order
        chunks = [keys[i:i + 777] for i in range(0, len(keys), 777)]
        got_b = kcount.chunked_bincount_counts(iter(chunks), 1000)
        got_m = kcount.chunked_merge_counts(iter(chunks))
        assert np.array_equal(got_b, want)
        assert np.array_equal(got_m, want)


# --------------------------------------------------------------------- #
# stream_counts lanes (kernels/dispatch.py)
# --------------------------------------------------------------------- #

class TestStreamCounts:
    def _stream(self, codes, radix, chunk_rows):
        stats = {k: 0 for k in dispatch._STAT_KEYS}
        cols = tuple(range(codes.shape[1]))
        chunks = (
            [codes[i:i + chunk_rows, j] for j in range(codes.shape[1])]
            for i in range(0, len(codes), chunk_rows)
        )
        counts = dispatch.stream_counts(
            chunks, [int(r) for r in radix],
            kcount.bincount_limit(len(codes)), stats,
        )
        return counts, stats

    def _dense_counts(self, codes, radix):
        dense = kern.GroupCounter(np.ascontiguousarray(codes), list(radix))
        return dense.counts(tuple(range(codes.shape[1])))

    def test_bincount_lane(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 5, (4000, 3)).astype(np.int64)
        counts, stats = self._stream(codes, [5, 5, 5], 1000)
        assert stats["chunked_bincount"] == 1
        assert stats["chunked_chunks"] == 4
        assert np.array_equal(counts, self._dense_counts(codes, [5, 5, 5]))

    def test_merge_lane(self):
        # Key bound above CHUNK_TABLE_CAP but inside int64: sorted-run
        # merge, exact integer adds.
        rng = np.random.default_rng(4)
        codes = np.column_stack([
            rng.integers(0, 5000, 3000),
            rng.integers(0, 5000, 3000),
        ]).astype(np.int64)
        radix = [5000, 5000]  # bound 25e6 > CHUNK_TABLE_CAP (4Mi)
        counts, stats = self._stream(codes, radix, 700)
        assert stats["chunked_merge"] == 1
        assert np.array_equal(counts, self._dense_counts(codes, radix))

    def test_wide_lane_beyond_int64(self):
        # Radix product above 2^62: the lexsort row-tuple lane.
        rng = np.random.default_rng(5)
        big = 1 << 21
        codes = np.column_stack([
            rng.integers(0, big, 2000) for _ in range(3)
        ]).astype(np.int64)
        radix = [big, big, big]  # 2^63 > INT64_KEY_BOUND
        counts, stats = self._stream(codes, radix, 600)
        assert stats["chunked_wide"] == 1
        dense = self._dense_counts(codes, radix)
        assert np.array_equal(counts, dense)

    @pytest.mark.parametrize("chunk_rows", [1, 7, 100, 399, 400, 4096])
    def test_counts_chunked_parity_hook(self, rel, chunk_rows):
        dense = kern.GroupCounter(rel.codes, list(rel.radix))
        for idx in subsets(rel.n_cols, 3):
            want = dense.counts(idx)
            got = dense.counts_chunked(idx, chunk_rows=chunk_rows)
            assert np.array_equal(want, got), idx


# --------------------------------------------------------------------- #
# Store round trip + manifest validation
# --------------------------------------------------------------------- #

class TestStore:
    def test_narrow_dtype_thresholds(self):
        assert narrow_dtype(2) == np.dtype(np.uint8)
        assert narrow_dtype(256) == np.dtype(np.uint8)
        assert narrow_dtype(257) == np.dtype(np.uint16)
        assert narrow_dtype(1 << 16) == np.dtype(np.uint16)
        assert narrow_dtype((1 << 16) + 1) == np.dtype(np.int32)
        assert narrow_dtype(1 << 40) == np.dtype(np.int64)

    def test_write_store_round_trip(self, rel, store):
        back = MmapBackend(store)
        assert back.n_rows == rel.n_rows
        assert list(back.columns) == list(rel.columns)
        assert list(back.radix) == [int(r) for r in rel.radix]
        assert back.fingerprint() == persist.relation_fingerprint(rel)
        assert back.to_relation() == rel
        assert back.store_bytes() > 0

    def test_write_store_refuses_overwrite(self, rel, store):
        with pytest.raises(StoreError, match="already exists"):
            write_store(rel, store)
        write_store(rel, store, force=True)  # force replaces

    def test_read_manifest_rejects_missing(self, tmp_path):
        with pytest.raises(StoreError):
            read_manifest(str(tmp_path / "nope"))

    def test_read_manifest_rejects_corrupt(self, store):
        with open(os.path.join(store, "store.json"), "w") as f:
            f.write("{not json")
        with pytest.raises(StoreError):
            read_manifest(store)

    def test_mmap_rejects_truncated_column(self, store):
        manifest = read_manifest(store)
        col0 = os.path.join(store, "col_00000.bin")
        with open(col0, "r+b") as f:
            f.truncate(os.path.getsize(col0) - 1)
        with pytest.raises(StoreError, match="bytes"):
            MmapBackend(store)
        assert manifest["n_rows"] > 0

    def test_open_backend_unknown_name(self, store):
        with pytest.raises(StoreError, match="unknown store backend"):
            open_backend(store, backend="csv")


class TestIngest:
    CSV = (
        "city,temp,wind\n"
        " aa ,1,x\n"
        "bb,,y\n"
        "cc,3\n"            # short row: padded with <null>
        "dd,4,z,EXTRA\n"    # long row: truncated
        "aa,1,x\n"
    )

    def test_round_trip_matches_from_csv(self, tmp_path):
        import io
        csv_path = tmp_path / "t.csv"
        csv_path.write_text(self.CSV)
        out = str(tmp_path / "t.store")
        manifest = ingest_csv(str(csv_path), out, chunk_rows=2)
        mem = from_csv(io.StringIO(self.CSV), name="t.csv")
        assert manifest["fingerprint"] == persist.relation_fingerprint(mem)
        assert MmapBackend(out).to_relation() == mem

    def test_fingerprint_stable_across_reingest(self, tmp_path):
        csv_path = tmp_path / "t.csv"
        csv_path.write_text(self.CSV)
        a = ingest_csv(str(csv_path), str(tmp_path / "a.store"), chunk_rows=1)
        b = ingest_csv(str(csv_path), str(tmp_path / "b.store"), chunk_rows=64)
        assert a["fingerprint"] == b["fingerprint"]

    def test_max_rows_and_headerless(self, tmp_path):
        import io
        text = "1,2\n3,4\n5,6\n"
        csv_path = tmp_path / "h.csv"
        csv_path.write_text(text)
        manifest = ingest_csv(
            str(csv_path), str(tmp_path / "h.store"),
            has_header=False, max_rows=2,
        )
        mem = from_csv(io.StringIO(text), has_header=False, max_rows=2,
                       name="h.csv")
        assert manifest["n_rows"] == 2
        assert manifest["columns"] == ["A0", "A1"]
        assert manifest["fingerprint"] == persist.relation_fingerprint(mem)

    def test_refuses_existing_without_force(self, tmp_path):
        csv_path = tmp_path / "t.csv"
        csv_path.write_text(self.CSV)
        out = str(tmp_path / "t.store")
        ingest_csv(str(csv_path), out)
        with pytest.raises(StoreError, match="already exists"):
            ingest_csv(str(csv_path), out)
        ingest_csv(str(csv_path), out, force=True)


# --------------------------------------------------------------------- #
# Backend parity (hypothesis) + BackendRelation surface
# --------------------------------------------------------------------- #

class TestBackendParity:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n_rows=st.integers(1, 120),
        n_cols=st.integers(1, 4),
        card=st.integers(1, 9),
        chunk=st.integers(1, 130),
    )
    def test_mmap_entropies_bit_identical(
        self, tmp_path_factory, seed, n_rows, n_cols, card, chunk
    ):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, card, (n_rows, n_cols)).astype(np.int64)
        rel = Relation(codes, [f"c{j}" for j in range(n_cols)])
        out = str(tmp_path_factory.mktemp("hyp") / "s.store")
        write_store(rel, out)
        mem = NumpyBackend(rel)
        disk = BackendRelation(MmapBackend(out), chunk_rows=chunk)
        dense = rel.kernels
        for idx in subsets(n_cols):
            assert np.array_equal(
                mem.key_counts(idx), dense.counts(idx)
            )
            assert dense.entropy(idx) == disk.kernels.entropy(idx)

    def test_numpy_backend_pushes_down(self, rel):
        back = NumpyBackend(rel)
        counter = ChunkedGroupCounter(back)
        want = rel.kernels.counts((0, 2))
        assert np.array_equal(counter.counts((0, 2)), want)
        assert counter.stats["chunked_pushdown"] == 1

    def test_ids_materialize_hook(self, store, rel):
        brel = open_store_relation(store)
        ids, n_groups = brel.kernels.ids((0, 1))
        want_ids, want_groups = rel.kernels.ids((0, 1))
        assert n_groups == want_groups
        assert np.array_equal(ids, want_ids)
        assert brel.kernels.stats["chunked_materialized"] >= 1

    def test_ids_without_hook_raises(self, store):
        counter = ChunkedGroupCounter(MmapBackend(store))
        with pytest.raises(RuntimeError):
            counter.ids((0,))

    def test_backend_relation_surface(self, store, rel):
        brel = open_store_relation(store)
        assert len(brel) == rel.n_rows
        assert brel.n_cells == rel.n_cells
        assert brel.col_index(rel.columns[1]) == 1
        assert brel.cardinality(0) == rel.cardinality(0)
        assert not brel.supports_delta_tracking
        assert brel == rel  # materializing equality
        assert brel.group_sizes((0,)).sum() == rel.n_rows
        with pytest.raises(TypeError):
            hash(brel)

    def test_delta_tracking_silently_disabled(self, store):
        brel = open_store_relation(store)
        maimon = EngineSpec(track_deltas=True).make_maimon(brel)
        try:
            result = maimon.mine_mvds(0.1)
            assert result is not None
            assert not maimon.oracle.tracks_deltas
        finally:
            maimon.close()

    def test_chunked_counters_reach_flat_namespace(self, store):
        brel = open_store_relation(store)
        maimon = EngineSpec().make_maimon(brel)
        try:
            maimon.mine_mvds(0.05)
            counters = maimon.counters()
        finally:
            maimon.close()
        chunked = {k: v for k, v in counters.items()
                   if k.startswith("kernel.chunked")}
        assert chunked, counters
        assert sum(chunked.values()) > 0


# --------------------------------------------------------------------- #
# Streaming fingerprint (satellite: exec.persist)
# --------------------------------------------------------------------- #

class TestStreamingFingerprint:
    def test_matches_single_shot_reference(self, rel):
        import hashlib
        h = hashlib.sha256()
        h.update(f"v{persist.CACHE_FORMAT}:{rel.n_rows}x{rel.n_cols}".encode())
        for j, name in enumerate(rel.columns):
            h.update(b"\x00" + str(name).encode())
            h.update(np.ascontiguousarray(
                rel.codes[:, j], dtype=np.int64).tobytes())
        assert persist.relation_fingerprint(rel) == h.hexdigest()[:40]

    def test_chunk_size_invariant(self, rel, monkeypatch):
        want = persist.relation_fingerprint(rel)
        monkeypatch.setattr(persist, "FINGERPRINT_CHUNK_ROWS", 17)
        assert persist.relation_fingerprint(rel) == want

    def test_large_file_tripwire(self, monkeypatch):
        """Fingerprinting must stream: no chunk may exceed the row bound.

        A duck-typed relation stands in for a store too large to slice
        whole; its chunk iterator records every block it hands out, so a
        regression to whole-column hashing shows up as an oversized (or
        bypassed) read.
        """
        monkeypatch.setattr(persist, "FINGERPRINT_CHUNK_ROWS", 64)
        base = markov_tree(3, 1000, seed=9, name="big")
        seen = []

        class SpyRelation:
            name = "big"
            n_rows = base.n_rows
            n_cols = base.n_cols
            columns = base.columns

            def iter_column_chunks(self, j, chunk_rows):
                assert chunk_rows <= 64
                for start in range(0, base.n_rows, chunk_rows):
                    block = base.codes[start:start + chunk_rows, j]
                    seen.append(block.nbytes)
                    yield block

        got = persist.relation_fingerprint(SpyRelation())
        assert got == persist.relation_fingerprint(base)
        assert seen and max(seen) <= 64 * 8


# --------------------------------------------------------------------- #
# DataSpec store/backend validation + load
# --------------------------------------------------------------------- #

class TestDataSpecStore:
    def test_store_is_exclusive_with_csv(self, store):
        with pytest.raises(SpecError, match="exactly one"):
            DataSpec(csv="x.csv", store=store).validate()

    def test_store_rejects_max_rows(self, store):
        with pytest.raises(SpecError, match="re-ingest") as err:
            DataSpec(store=store, max_rows=10).validate()
        assert err.value.field == "max_rows"

    def test_store_rejects_sample(self, store):
        with pytest.raises(SpecError):
            DataSpec(store=store, sample=10).validate()

    def test_backend_requires_store(self):
        with pytest.raises(SpecError, match="backend"):
            DataSpec(csv="x.csv", backend="mmap").validate()

    def test_numpy_backend_invalid_for_store(self, store):
        with pytest.raises(SpecError, match="backend"):
            DataSpec(store=store, backend="numpy").validate()

    def test_load_bad_path_is_spec_error(self, tmp_path):
        with pytest.raises(SpecError) as err:
            DataSpec(store=str(tmp_path / "missing")).load()
        assert err.value.field == "store"

    @pytest.mark.skipif(have_duckdb(), reason="duckdb installed")
    def test_load_duckdb_missing_is_spec_error(self, store):
        with pytest.raises(SpecError) as err:
            DataSpec(store=store, backend="duckdb").load()
        assert err.value.field == "backend"

    def test_api_run_store_parity(self, rel, store):
        request = TaskRequest(
            task="mine", spec=MineSpec(eps=0.01), engine=EngineSpec(),
            data=DataSpec(store=store),
        )
        got = api.run(request)
        want = api.run(
            TaskRequest(task="mine", spec=MineSpec(eps=0.01)), relation=rel
        )
        assert got.payload["mvds"] == want.payload["mvds"]
        assert got.payload["min_seps"] == want.payload["min_seps"]
        assert got.fingerprint == want.fingerprint


# --------------------------------------------------------------------- #
# Golden datasets end to end
# --------------------------------------------------------------------- #

class TestGoldenParity:
    @pytest.mark.parametrize("name", ["Bridges", "Breast_Cancer", "Abalone"])
    def test_store_mines_identically(self, name, tmp_path):
        rel = datasets.load(name, scale=1.0, max_rows=300, max_cols=9)
        out = str(tmp_path / f"{name}.store")
        write_store(rel, out)
        request = TaskRequest(
            task="mine", spec=MineSpec(eps=0.01), engine=EngineSpec(),
            data=DataSpec(store=out),
        )
        got = api.run(request)
        want = api.run(
            TaskRequest(task="mine", spec=MineSpec(eps=0.01)), relation=rel
        )
        assert got.payload["mvds"] == want.payload["mvds"]
        assert got.payload["min_seps"] == want.payload["min_seps"]
        assert got.fingerprint == want.fingerprint


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

class TestCLIStore:
    @pytest.fixture
    def csv_path(self, rel, tmp_path):
        from repro.data.loaders import to_csv
        path = str(tmp_path / "rel.csv")
        to_csv(rel, path)
        return path

    def test_ingest_then_mine(self, csv_path, tmp_path, capsys):
        from repro.cli import main
        out = str(tmp_path / "cli.store")
        assert main(["ingest", csv_path, "--out", out, "--trace"]) == 0
        text = capsys.readouterr().out
        assert "fingerprint" in text and "ingest" in text
        assert main(["mine", "--store", out, "--no-persist",
                     "--eps", "0.05"]) == 0

    def test_ingest_missing_csv(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit, match="ingest failed"):
            main(["ingest", str(tmp_path / "no.csv"),
                  "--out", str(tmp_path / "x.store")])

    def test_mine_store_with_max_rows_rejected(self, csv_path, tmp_path):
        from repro.cli import main
        out = str(tmp_path / "cli2.store")
        assert main(["ingest", csv_path, "--out", out]) == 0
        with pytest.raises(SystemExit, match="invalid request"):
            main(["mine", "--store", out, "--max-rows", "5",
                  "--no-persist"])

    def test_help_lists_new_commands(self, capsys):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "ingest" in out and "store-bench" in out


# --------------------------------------------------------------------- #
# Serve wiring
# --------------------------------------------------------------------- #

class TestServeStore:
    @pytest.fixture
    def service(self):
        from repro.serve.service import MiningService
        svc = MiningService()
        yield svc
        svc.close()

    def test_upload_mine_and_gauge(self, service, rel, store):
        desc = service.upload({"store": store})
        assert desc["source"] == "store:mmap"
        assert desc["store_bytes"] > 0
        assert desc["dataset_id"] == persist.relation_fingerprint(rel)
        job = service.submit_mine({"dataset_id": desc["dataset_id"],
                                   "eps": 0.05})
        service.jobs.wait(job.id, timeout=60)
        assert service.jobs.get(job.id).status == "done"
        body = service.metrics_text()
        assert f'repro_store_bytes{{dataset_id="{desc["dataset_id"]}"}}' in body

    def test_append_rejected_read_only(self, service, store):
        from repro.serve.service import ServiceError
        desc = service.upload({"store": store})
        with pytest.raises(ServiceError) as err:
            service.submit_append({"dataset_id": desc["dataset_id"],
                                   "rows": [["a", "b", "c", "d", "e"]]})
        assert err.value.status == 400
        assert err.value.extra.get("code") == "store_readonly"

    def test_bad_store_structured_400(self, service, tmp_path):
        from repro.serve.service import ServiceError
        with pytest.raises(ServiceError) as err:
            service.upload({"store": str(tmp_path / "nope")})
        assert err.value.status == 400
        assert err.value.extra.get("code") == "invalid_store"

    def test_upload_shape_error_mentions_store(self, service):
        from repro.serve.service import ServiceError
        with pytest.raises(ServiceError, match="'store'"):
            service.upload({})


# --------------------------------------------------------------------- #
# Loaders: one-pass parse semantics
# --------------------------------------------------------------------- #

class TestLoaderOnePass:
    def test_ragged_pad_truncate_parity(self):
        import io
        text = "a,b,c\n1,2,3\n4,5\n6,7,8,9\n , ,\n"
        rel = from_csv(io.StringIO(text))
        assert rel.rows() == [
            ("1", "2", "3"),
            ("4", "5", "<null>"),
            ("6", "7", "8"),
            ("<null>", "<null>", "<null>"),
        ]

    def test_max_rows_stops_the_parse(self):
        """The cap bounds *reading*, not just the result."""
        consumed = []

        class SpyLines:
            def __init__(self, lines):
                self._it = iter(lines)

            def __iter__(self):
                return self

            def __next__(self):
                line = next(self._it)
                consumed.append(line)
                return line

        lines = ["a,b\n"] + [f"{i},{i}\n" for i in range(1000)]
        rel = from_csv(SpyLines(lines), max_rows=5)
        assert rel.n_rows == 5
        assert len(consumed) == 6  # header + exactly max_rows lines

    def test_headerless_width_from_first_row(self):
        import io
        rel = from_csv(io.StringIO("1,2\n3,4,5\n6\n"), has_header=False)
        assert rel.columns == ("A0", "A1")
        assert rel.rows() == [("1", "2"), ("3", "4"), ("6", "<null>")]


# --------------------------------------------------------------------- #
# DuckDB pushdown (optional dependency)
# --------------------------------------------------------------------- #

class TestDuckDB:
    @pytest.fixture(autouse=True)
    def _need_duckdb(self):
        pytest.importorskip("duckdb")

    def test_counts_parity_and_order(self, rel, store):
        from repro.backends.duckdb_backend import DuckDBBackend
        back = DuckDBBackend(MmapBackend(store))
        try:
            dense = rel.kernels
            for idx in subsets(rel.n_cols, 3):
                assert np.array_equal(back.key_counts(idx),
                                      dense.counts(idx)), idx
        finally:
            back.close()

    def test_mining_parity(self, rel, store):
        brel = open_store_relation(store, backend="duckdb")
        try:
            got = EngineSpec().make_maimon(brel)
            want = EngineSpec().make_maimon(rel)
            a = got.mine_mvds(0.01)
            b = want.mine_mvds(0.01)
            assert sorted(a.mvds) == sorted(b.mvds)
            got.close()
            want.close()
        finally:
            brel.backend.close()
