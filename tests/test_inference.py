"""Tests for Theorem 5.7 constructive derivation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import TOL
from repro.core.inference import derive, implied_eps, is_implied
from repro.core.measures import j_measure
from repro.core.miner import mine_mvds
from repro.core.mvd import MVD
from repro.entropy.oracle import make_oracle
from repro.reference import all_standard_mvds
from tests.conftest import random_relation

A, B, C, D, E, F = range(6)


class TestDerive:
    def test_requires_standard_target(self, fig1):
        mined = mine_mvds(fig1, 0.0).mvds
        with pytest.raises(ValueError):
            derive(mined, MVD({A}, [{B}, {C}, {D}]))

    def test_fig1_paper_mvds_derivable(self, fig1, fig1_oracle):
        """The three support MVDs of Example 3.2 are implied by M_0."""
        mined = mine_mvds(fig1, 0.0).mvds
        for target in (
            MVD({B, D}, [{E}, {A, C, F}]),
            MVD({A, D}, [{C, F}, {B, E}]),
            MVD({A}, [{F}, {B, C, D, E}]),
        ):
            d = derive(mined, target)
            assert d is not None, target.format("ABCDEF")
            assert len(d.steps) == len(target.dependents[0]) * len(
                target.dependents[1]
            )
            assert d.verify(fig1_oracle)
            assert d.bound(fig1_oracle) >= j_measure(fig1_oracle, target) - TOL

    def test_non_mvd_not_derivable(self, fig1):
        """A pair no mined MVD separates yields no derivation."""
        mined = mine_mvds(fig1, 0.0).mvds
        # B and E are never separated with an empty key at eps=0.
        target = MVD(frozenset(), [{B}, {E}])
        assert derive(mined, target) is None

    def test_witnesses_have_keys_inside_target_key(self, fig1):
        mined = mine_mvds(fig1, 0.0).mvds
        target = MVD({A, D}, [{C, F}, {B, E}])
        d = derive(mined, target)
        for step in d.steps:
            assert step.witness.key <= target.key
            assert step.witness.separates(step.a, step.b)

    def test_step_format(self, fig1):
        mined = mine_mvds(fig1, 0.0).mvds
        d = derive(mined, MVD({A}, [{F}, {B, C, D, E}]))
        text = d.steps[0].format("ABCDEF")
        assert "J(" in text and "<=" in text


class TestTheorem57Property:
    """Every ε-standard-MVD must be derivable from M_ε with a valid bound."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 800), eps=st.sampled_from([0.0, 0.2]))
    def test_every_holding_mvd_derivable(self, seed, eps):
        r = random_relation(4, 14, seed=seed)
        o = make_oracle(r)
        mined = mine_mvds(r, eps).mvds
        for target in all_standard_mvds(r, eps):
            d = derive(mined, target)
            assert d is not None, (
                f"eps-MVD {target} not derivable from M_eps (seed={seed})"
            )
            # The Shannon bound must hold numerically.
            assert d.verify(o)
            # And the guaranteed threshold is (#steps) * eps.
            assert implied_eps(mined, target, eps) == pytest.approx(
                len(d.steps) * eps
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 800))
    def test_is_implied_sound(self, seed):
        """is_implied -> the target really has a finite certified J bound."""
        r = random_relation(4, 12, seed=seed)
        o = make_oracle(r)
        eps = 0.15
        mined = mine_mvds(r, eps).mvds
        for target in all_standard_mvds(r, eps)[:10]:
            if is_implied(o, mined, target, eps):
                d = derive(mined, target)
                assert j_measure(o, target) <= d.bound(o) + TOL
