"""Property tests for the bitmask attribute-set lattice (repro.lattice).

The contract under test: ``AttrSet`` is *fully interchangeable* with
``frozenset[int]`` — same algebra, same iteration/sort semantics, equal and
hash-equal — while being backed by a single Python-int bitmask.  The hash
parity test is the load-bearing one: it pins our pure-Python replica of
CPython's frozenset hash bit-for-bit against the interpreter, which is what
makes mixed containment (``frozenset(...) in {AttrSet(...)}``) safe
everywhere else in the system.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice import (
    AttrSet,
    attrset,
    bits_of,
    contains_any,
    fmt_attrs,
    mask_of,
    minimize,
    pack_masks,
    subsets_of,
    supersets_of,
    unpack_masks,
)
from repro.lattice.masks import VECTORIZE_THRESHOLD

# Indices beyond 64 exercise the multi-word paths (no 64-attribute ceiling).
elements = st.integers(min_value=0, max_value=130)
index_sets = st.frozensets(elements, max_size=12)


class TestFrozensetInterop:
    @given(index_sets)
    def test_hash_parity_with_frozenset(self, s):
        a = attrset(s)
        assert hash(a) == hash(s)

    @given(index_sets)
    def test_equality_both_directions(self, s):
        a = attrset(s)
        assert a == s and s == a
        assert not (a != s)

    @given(index_sets, index_sets)
    def test_mixed_containment(self, s, t):
        pool = {attrset(s), t}
        assert s in pool          # frozenset probes an AttrSet entry
        assert attrset(t) in pool  # AttrSet probes a frozenset entry

    @given(index_sets)
    def test_inequality_with_different_set(self, s):
        a = attrset(s)
        assert a != s | {131}
        assert a != frozenset(["x"])  # non-int members: unequal, no raise

    @given(index_sets)
    def test_iteration_is_ascending(self, s):
        a = attrset(s)
        assert list(a) == sorted(s)
        assert a.indices() == tuple(sorted(s))
        assert len(a) == len(s)
        assert bool(a) == bool(s)


class TestAlgebra:
    @given(index_sets, index_sets)
    def test_binary_operators_match_frozenset(self, s, t):
        a, b = attrset(s), attrset(t)
        assert a | b == s | t
        assert a & b == s & t
        assert a - b == s - t
        assert a ^ b == s ^ t

    @given(index_sets, index_sets)
    def test_mixed_operand_operators(self, s, t):
        a = attrset(s)
        # frozenset on either side; result is an AttrSet with set semantics.
        assert (a | t) == (s | t) and (t | a) == (s | t)
        assert (a - t) == (s - t) and (t - a) == (t - s)
        assert (a & t) == (s & t) and (t & a) == (s & t)
        assert (a ^ t) == (s ^ t) and (t ^ a) == (s ^ t)

    @given(index_sets, index_sets)
    def test_order_predicates(self, s, t):
        a, b = attrset(s), attrset(t)
        assert (a <= b) == (s <= t)
        assert (a < b) == (s < t)
        assert (a >= b) == (s >= t)
        assert (a > b) == (s > t)
        assert a.issubset(t) == s.issubset(t)
        assert a.issuperset(t) == s.issuperset(t)
        assert a.isdisjoint(t) == s.isdisjoint(t)

    @given(index_sets, index_sets, index_sets)
    def test_named_methods_accept_iterables(self, s, t, u):
        a = attrset(s)
        assert a.union(t, u) == s.union(t, u)
        assert a.intersection(t, u) == s.intersection(t, u)
        assert a.difference(t, u) == s.difference(t, u)
        assert a.symmetric_difference(t) == s.symmetric_difference(t)

    @given(index_sets, elements)
    def test_membership_and_bit_edits(self, s, j):
        a = attrset(s)
        assert (j in a) == (j in s)
        assert a.with_attr(j) == s | {j}
        assert a.without_attr(j) == s - {j}

    @given(st.frozensets(elements, min_size=1, max_size=12))
    def test_min_max(self, s):
        a = attrset(s)
        assert a.min_attr() == min(s)
        assert a.max_attr() == max(s)
        assert min(a) == min(s) and max(a) == max(s)


class TestConstruction:
    def test_factories(self):
        assert AttrSet.singleton(5) == {5}
        assert AttrSet.full(4) == {0, 1, 2, 3}
        assert AttrSet.from_mask(0b1011) == {0, 1, 3}
        assert attrset([3, 1, 1, 3]) == {1, 3}
        assert attrset(()) == frozenset()

    def test_attrset_is_idempotent(self):
        a = attrset({1, 2})
        assert attrset(a) is a

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            attrset([-1])

    def test_no_64_attribute_ceiling(self):
        wide = attrset({0, 63, 64, 127, 200})
        assert wide.mask == (1 << 0) | (1 << 63) | (1 << 64) | (1 << 127) | (1 << 200)
        assert list(wide) == [0, 63, 64, 127, 200]
        assert hash(wide) == hash(frozenset({0, 63, 64, 127, 200}))

    def test_empty_min_max_raise(self):
        with pytest.raises(ValueError):
            attrset(()).min_attr()
        with pytest.raises(ValueError):
            attrset(()).max_attr()

    @given(index_sets)
    def test_pickle_roundtrip(self, s):
        a = attrset(s)
        assert pickle.loads(pickle.dumps(a)) == a

    def test_mask_of_and_bits_of(self):
        assert mask_of(frozenset({0, 2})) == 0b101
        assert mask_of(attrset({0, 2})) == 0b101
        assert list(bits_of(0b1101)) == [0, 2, 3]

    def test_fmt_attrs(self):
        assert fmt_attrs(attrset({0, 2}), ("A", "B", "C")) == "{A,C}"
        assert fmt_attrs({2, 0}) == "{0,2}"
        assert fmt_attrs(()) == "{}"

    def test_repr(self):
        assert repr(attrset({1, 3})) == "AttrSet({1,3})"


masks = st.integers(min_value=0, max_value=(1 << 90) - 1)


class TestMaskArrays:
    @given(st.lists(masks, min_size=1, max_size=20))
    def test_pack_unpack_roundtrip(self, ms):
        assert unpack_masks(pack_masks(ms)) == ms

    @given(st.lists(masks, min_size=1, max_size=20), masks)
    def test_row_predicates_match_python(self, ms, probe):
        packed = pack_masks(ms, n_words=2)
        assert contains_any(packed, probe).tolist() == [bool(m & probe) for m in ms]
        assert supersets_of(packed, probe).tolist() == [
            probe & ~m == 0 for m in ms
        ]
        assert subsets_of(packed, probe).tolist() == [m & ~probe == 0 for m in ms]

    @given(st.lists(masks, max_size=20))
    def test_minimize_matches_bruteforce(self, ms):
        got = set(minimize(ms))
        uniq = set(ms)
        expected = {
            m for m in uniq
            if not any(o != m and o & ~m == 0 for o in uniq)
        }
        assert got == expected

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, (1 << 20) - 1), min_size=VECTORIZE_THRESHOLD,
                    max_size=VECTORIZE_THRESHOLD + 40))
    def test_minimize_vectorized_path(self, ms):
        """Force the numpy sweep and pin it against the plain-loop result."""
        got = set(minimize(ms))
        uniq = set(ms)
        expected = {
            m for m in uniq
            if not any(o != m and o & ~m == 0 for o in uniq)
        }
        assert got == expected

    def test_minimize_antichain_property(self):
        out = minimize([0b111, 0b011, 0b101, 0b001, 0b110])
        assert out == [0b001, 0b110]

    def test_pack_width(self):
        packed = pack_masks([1 << 70], )
        assert packed.shape == (1, 2)
        assert unpack_masks(packed) == [1 << 70]

    def test_empty_minimize(self):
        assert minimize([]) == []
        # The empty set is a subset of everything: it dominates.
        assert minimize([0, 0b11]) == [0]

    def test_numpy_dtype(self):
        packed = pack_masks([0b1, 0b10])
        assert packed.dtype == np.uint64


class TestContainsSemantics:
    """Membership must mirror frozenset: equality with a member, no raising."""

    def test_non_numeric_is_absent(self):
        a = attrset({2})
        assert ("A" in a) == ("A" in frozenset({2}))
        assert "A" not in a

    def test_float_not_truncated(self):
        a = attrset({2})
        assert (2.5 in a) == (2.5 in frozenset({2}))
        assert 2.5 not in a
        assert (2.0 in a) == (2.0 in frozenset({2}))
        assert 2.0 in a

    def test_bool_and_numpy_ints(self):
        a = attrset({0, 1})
        assert (True in a) == (True in frozenset({0, 1}))
        assert np.int64(1) in a
        assert np.int64(5) not in a

    def test_numeric_string_absent(self):
        assert ("2" in attrset({2})) == ("2" in frozenset({2}))
