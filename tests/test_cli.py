"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.data.generators import paper_running_example
from repro.data.loaders import to_csv


@pytest.fixture
def fig1_csv(tmp_path):
    path = str(tmp_path / "fig1.csv")
    to_csv(paper_running_example(), path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine", "x.csv"])
        assert args.eps == 0.0
        assert args.engine == "pli"


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Census" in out and "nursery" in out

    def test_mine_csv(self, fig1_csv, capsys):
        assert main(["mine", fig1_csv, "--eps", "0.0", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "full MVDs" in out
        assert "->>" in out

    def test_mine_json_output(self, fig1_csv, tmp_path, capsys):
        out_path = str(tmp_path / "mined.json")
        assert main(["mine", fig1_csv, "--json", out_path]) == 0
        data = json.loads(open(out_path).read())
        assert data["eps"] == 0.0
        assert data["mvds"]

    def test_mine_missing_input(self):
        with pytest.raises(SystemExit):
            main(["mine"])

    def test_schemas(self, fig1_csv, capsys):
        assert (
            main(
                [
                    "schemas",
                    fig1_csv,
                    "--eps",
                    "0.0",
                    "--top",
                    "3",
                    "--objective",
                    "relations",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Top" in out and "rank" in out

    def test_schemas_json(self, fig1_csv, tmp_path):
        out_path = str(tmp_path / "schemas.json")
        assert main(["schemas", fig1_csv, "--eps", "0.0", "--json", out_path]) == 0
        data = json.loads(open(out_path).read())
        assert data["schemas"]

    def test_profile(self, fig1_csv, capsys):
        assert main(["profile", fig1_csv]) == 0
        out = capsys.readouterr().out
        assert "Column profile" in out and "H_bits" in out

    def test_dataset_source(self, capsys):
        assert (
            main(["mine", "--dataset", "Bridges", "--scale", "1.0", "--top", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "Bridges" in out
