"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.data.generators import paper_running_example
from repro.data.loaders import to_csv


@pytest.fixture
def fig1_csv(tmp_path):
    path = str(tmp_path / "fig1.csv")
    to_csv(paper_running_example(), path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        """Request flags parse as None; defaults apply at spec compile time
        (which is what lets --config reject explicitly-passed flags)."""
        from repro import api
        from repro.cli import _compile_request, _engine_spec

        args = build_parser().parse_args(["mine", "x.csv"])
        assert args.eps is None and args.engine is None
        assert _engine_spec(args).engine == "pli"
        request = _compile_request("mine", args, api.MineSpec())
        assert request.spec.eps == 0.0
        assert request.engine.engine == "pli"
        assert request.engine.persist is True  # CLI persists by default


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "Census" in out and "nursery" in out

    def test_mine_csv(self, fig1_csv, capsys):
        assert main(["mine", fig1_csv, "--eps", "0.0", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "full MVDs" in out
        assert "->>" in out

    def test_mine_json_output(self, fig1_csv, tmp_path, capsys):
        out_path = str(tmp_path / "mined.json")
        assert main(["mine", fig1_csv, "--json", out_path]) == 0
        data = json.loads(open(out_path).read())
        assert data["eps"] == 0.0
        assert data["mvds"]

    def test_mine_missing_input(self):
        with pytest.raises(SystemExit):
            main(["mine"])

    def test_schemas(self, fig1_csv, capsys):
        assert (
            main(
                [
                    "schemas",
                    fig1_csv,
                    "--eps",
                    "0.0",
                    "--top",
                    "3",
                    "--objective",
                    "relations",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Top" in out and "rank" in out

    def test_schemas_json(self, fig1_csv, tmp_path):
        out_path = str(tmp_path / "schemas.json")
        assert main(["schemas", fig1_csv, "--eps", "0.0", "--json", out_path]) == 0
        data = json.loads(open(out_path).read())
        assert data["schemas"]

    def test_profile(self, fig1_csv, capsys):
        assert main(["profile", fig1_csv]) == 0
        out = capsys.readouterr().out
        assert "Column profile" in out and "H_bits" in out

    def test_dataset_source(self, capsys):
        assert (
            main(["mine", "--dataset", "Bridges", "--scale", "1.0", "--top", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "Bridges" in out


class TestBugfixRegressions:
    def test_profile_honours_engine_flag(self, fig1_csv, monkeypatch):
        """Regression: --engine was silently dropped by cmd_profile."""
        import repro.entropy.oracle as oracle_mod

        seen = {}
        original = oracle_mod.make_oracle

        def spy(relation, *args, **kwargs):
            seen["engine"] = kwargs.get("engine", "pli")
            return original(relation, *args, **kwargs)

        monkeypatch.setattr(oracle_mod, "make_oracle", spy)
        assert main(["profile", fig1_csv, "--engine", "naive", "--no-persist"]) == 0
        assert seen["engine"] == "naive"

    def test_mine_budget_zero_means_no_time(self, fig1_csv, capsys):
        """Regression: --budget 0 was truth-tested into 'unlimited'."""
        assert main(["mine", fig1_csv, "--budget", "0", "--no-persist"]) == 0
        out = capsys.readouterr().out
        assert "TIMEOUT" in out
        assert "0 full MVDs" in out

    def test_schemas_budget_zero_means_no_time(self, fig1_csv, capsys):
        assert main(["schemas", fig1_csv, "--budget", "0", "--no-persist"]) == 1
        assert "no schemas found" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["pli", "naive", "sql"])
    def test_all_engines_exposed_and_working(self, fig1_csv, engine, capsys):
        """The CLI must accept every engine make_oracle supports."""
        assert main(
            ["mine", fig1_csv, "--engine", engine, "--top", "2", "--no-persist"]
        ) == 0
        assert "->>" in capsys.readouterr().out

    def test_profile_json_output(self, fig1_csv, tmp_path):
        out_path = str(tmp_path / "profile.json")
        assert main(["profile", fig1_csv, "--no-persist", "--json", out_path]) == 0
        data = json.loads(open(out_path).read())
        assert {c["column"] for c in data["columns"]} == set("ABCDEF")
        assert all(c["distinct"] >= 1 for c in data["columns"])
        assert data["fds"]


class TestDiffCommand:
    def _mine_artefact(self, csv_path, tmp_path, name):
        out = str(tmp_path / name)
        assert main(["mine", csv_path, "--eps", "0.0", "--no-persist",
                     "--json", out]) == 0
        return out

    def test_identical_artefacts_exit_zero(self, fig1_csv, tmp_path, capsys):
        a = self._mine_artefact(fig1_csv, tmp_path, "a.json")
        assert main(["diff", a, a]) == 0
        out = capsys.readouterr().out
        assert "mvds: +0 -0" in out

    def test_changed_artefacts_exit_one(self, fig1_csv, tmp_path, capsys):
        from repro.data.generators import paper_running_example
        from repro.data.loaders import to_csv

        red_csv = str(tmp_path / "fig1red.csv")
        to_csv(paper_running_example(with_red_tuple=True), red_csv)
        a = self._mine_artefact(fig1_csv, tmp_path, "a.json")
        b = self._mine_artefact(red_csv, tmp_path, "b.json")
        diff_out = str(tmp_path / "diff.json")
        assert main(["diff", a, b, "--json", diff_out]) == 1
        out = capsys.readouterr().out
        assert "- mvd" in out or "+ mvd" in out
        diff = json.loads(open(diff_out).read())
        assert diff["kind"] == "mine" and diff["changed"]


class TestServeParser:
    def test_serve_defaults(self):
        from repro.cli import _engine_spec

        args = build_parser().parse_args(["serve"])
        assert args.func.__name__ == "cmd_serve"
        assert args.port == 8765
        assert args.max_sessions == 8
        assert _engine_spec(args).engine == "pli"

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.func.__name__ == "cmd_serve_bench"
        assert args.json == "BENCH_serve.json"
