"""Naive vs PLI-cache engines vs counting reference, plus Shannon laws."""

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.entropy.naive import NaiveEntropyEngine
from repro.entropy.plicache import PLICacheEngine
from repro.entropy.oracle import make_oracle
from repro.reference import entropy_by_counting
from tests.conftest import random_relation


def all_subsets(n, max_size=None):
    max_size = n if max_size is None else max_size
    for r in range(max_size + 1):
        yield from (frozenset(c) for c in itertools.combinations(range(n), r))


class TestEnginesAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_naive_equals_counting(self, seed):
        r = random_relation(4, 50, seed=seed)
        eng = NaiveEntropyEngine(r)
        for attrs in all_subsets(4):
            assert eng.entropy_of(attrs) == pytest.approx(
                entropy_by_counting(r, attrs), abs=1e-10
            )

    @pytest.mark.parametrize("block_size", [1, 2, 3, 10])
    def test_pli_equals_naive_all_subsets(self, block_size):
        r = random_relation(5, 64, seed=3)
        naive = NaiveEntropyEngine(r)
        pli = PLICacheEngine(r, block_size=block_size)
        for attrs in all_subsets(5):
            assert pli.entropy_of(attrs) == pytest.approx(
                naive.entropy_of(attrs), abs=1e-9
            ), f"mismatch on {sorted(attrs)} (block_size={block_size})"

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000), rows=st.integers(1, 60))
    def test_pli_equals_naive_property(self, seed, rows):
        r = random_relation(4, rows, seed=seed)
        naive = NaiveEntropyEngine(r)
        pli = PLICacheEngine(r, block_size=2)
        for attrs in all_subsets(4):
            assert pli.entropy_of(attrs) == pytest.approx(
                naive.entropy_of(attrs), abs=1e-9
            )


class TestEntropyLaws:
    """H must satisfy the Shannon inequalities the algorithms rely on."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_monotone_and_submodular(self, seed):
        r = random_relation(4, 40, seed=seed)
        eng = PLICacheEngine(r)
        h = {attrs: eng.entropy_of(attrs) for attrs in all_subsets(4)}
        subsets = list(all_subsets(4))
        for x in subsets:
            for y in subsets:
                # Monotonicity: H(X) <= H(X u Y).
                assert h[x] <= h[x | y] + 1e-9
                # Submodularity: H(X) + H(Y) >= H(X u Y) + H(X n Y).
                assert h[x] + h[y] >= h[x | y] + h[x & y] - 1e-9

    def test_full_set_entropy_log_n_when_rows_distinct(self):
        r = random_relation(5, 30, seed=8)
        distinct = r.distinct()
        eng = NaiveEntropyEngine(distinct)
        assert eng.entropy_of(frozenset(range(5))) == pytest.approx(
            math.log2(distinct.n_rows)
        )

    def test_empty_set_entropy_zero(self):
        r = random_relation(3, 10, seed=0)
        assert NaiveEntropyEngine(r).entropy_of(frozenset()) == 0.0
        assert PLICacheEngine(r).entropy_of(frozenset()) == 0.0

    def test_empty_relation(self):
        import numpy as np
        from repro.data.relation import Relation

        r = Relation(np.zeros((0, 2), dtype=np.int64), ["a", "b"])
        assert NaiveEntropyEngine(r).entropy_of(frozenset({0})) == 0.0
        assert PLICacheEngine(r).entropy_of(frozenset({0, 1})) == 0.0


class TestCaching:
    def test_pli_cache_hits_grow(self):
        # counts_fast_path=False pins the partition-product machinery;
        # with the fast path on, entropy_of never touches partitions.
        r = random_relation(6, 100, seed=4)
        eng = PLICacheEngine(r, block_size=3, counts_fast_path=False)
        eng.entropy_of(frozenset({0, 1, 4}))
        misses_first = eng.cache_misses
        eng._entropy_memo.clear()  # force partition path again
        eng.entropy_of(frozenset({0, 1, 4}))
        assert eng.cache_hits > 0
        assert eng.cache_misses == misses_first  # no new partition work

    def test_fast_path_skips_partitions(self):
        r = random_relation(6, 100, seed=4)
        eng = PLICacheEngine(r, block_size=3)
        eng.entropy_of(frozenset({0, 1, 4}))
        assert eng.fast_entropies == 1
        assert eng.products == 0 and not eng._block_cache
        # partition_of still builds (and caches) PLIs on demand.
        part = eng.partition_of(frozenset({0, 1}))
        assert part.n_rows == 100
        assert eng._block_cache

    def test_fast_path_matches_partition_path_memo(self):
        r = random_relation(5, 80, seed=9)
        fast = PLICacheEngine(r, block_size=2)
        slow = PLICacheEngine(r, block_size=2, counts_fast_path=False)
        for attrs in all_subsets(5):
            assert fast.entropy_of(attrs) == pytest.approx(
                slow.entropy_of(attrs), abs=1e-9
            )

    def test_cross_cache_eviction(self):
        r = random_relation(8, 60, seed=5)
        eng = PLICacheEngine(r, block_size=2, cross_cache_size=2)
        for attrs in ({0, 2, 4}, {1, 3, 5}, {0, 5, 7}, {2, 3, 6}):
            eng.entropy_of(frozenset(attrs))
        assert len(eng._cross_cache) <= 2

    def test_cross_cache_lru_at_boundary(self):
        """Pin the eviction *order* exactly at the cache-size boundary:
        a re-used entry is refreshed, so the least-recently-used one goes."""
        r = random_relation(8, 60, seed=5)
        eng = PLICacheEngine(r, block_size=2, cross_cache_size=2)
        a, b, c = frozenset({0, 2}), frozenset({0, 4}), frozenset({0, 6})
        eng.partition_of(a)           # cache: [a]
        eng.partition_of(b)           # cache: [a, b] — exactly at capacity
        assert list(eng._cross_cache) == [a, b]
        eng.partition_of(a)           # LRU refresh: [b, a]
        assert list(eng._cross_cache) == [b, a]
        hits_before = eng.cache_hits
        eng.partition_of(c)           # overflow: b (least recent) evicted
        assert list(eng._cross_cache) == [a, c]
        # The refreshed entry still serves hits; the evicted one is rebuilt.
        eng.partition_of(a)
        assert eng.cache_hits > hits_before
        products_before = eng.products
        eng.partition_of(b)
        assert eng.products > products_before

    def test_naive_scan_counter(self):
        r = random_relation(3, 20, seed=6)
        eng = NaiveEntropyEngine(r)
        eng.entropy_of(frozenset({0, 1}))
        eng.entropy_of(frozenset({0, 1}))  # memo hit
        assert eng.scans == 1
        eng.reset_stats()
        assert eng.scans == 0

    def test_block_size_validation(self):
        r = random_relation(2, 5, seed=0)
        with pytest.raises(ValueError):
            PLICacheEngine(r, block_size=0)

    def test_reset_stats(self):
        r = random_relation(3, 20, seed=6)
        eng = PLICacheEngine(r, counts_fast_path=False)
        eng.entropy_of(frozenset({0, 1, 2}))
        assert eng.products > 0
        eng.reset_stats()
        assert eng.products == 0

    def test_reset_stats_clears_fast_and_kernel_counters(self):
        r = random_relation(3, 20, seed=6)
        eng = PLICacheEngine(r)
        eng.entropy_of(frozenset({0, 1, 2}))
        assert eng.fast_entropies == 1
        assert sum(eng.kernel_stats.values()) > 0
        eng.reset_stats()
        assert eng.fast_entropies == 0
        assert sum(eng.kernel_stats.values()) == 0

    def test_kernel_stats_are_per_engine(self):
        # The dispatch counters live on the shared relation-level
        # GroupCounter; each engine reports deltas against its own
        # baseline, so resetting one engine never clobbers another's
        # view — and never zeroes the shared counters themselves.
        r = random_relation(3, 30, seed=7)
        a = PLICacheEngine(r)
        b = NaiveEntropyEngine(r)
        a.entropy_of(frozenset({0, 1}))
        shared_before = sum(r.kernels.snapshot().values())
        b_before = b.kernel_stats
        a.reset_stats()
        assert sum(a.kernel_stats.values()) == 0
        assert b.kernel_stats == b_before
        assert sum(r.kernels.snapshot().values()) == shared_before
        b.entropy_of(frozenset({1, 2}))
        assert sum(b.kernel_stats.values()) > sum(b_before.values())
        assert sum(a.kernel_stats.values()) > 0  # shared accrual is visible


class TestMakeOracle:
    def test_engine_selection(self, fig1):
        assert isinstance(make_oracle(fig1, engine="pli").engine, PLICacheEngine)
        assert isinstance(make_oracle(fig1, engine="naive").engine, NaiveEntropyEngine)

    def test_unknown_engine(self, fig1):
        with pytest.raises(ValueError, match="unknown engine"):
            make_oracle(fig1, engine="duckdb")


class TestOutOfRangeAttrs:
    """Invalid column indices must raise, never silently drop bits."""

    def test_pli_out_of_range_raises(self):
        r = random_relation(5, 20, seed=3)
        eng = PLICacheEngine(r)
        with pytest.raises(IndexError):
            eng.entropy_of(frozenset({0, 99}))
        with pytest.raises(IndexError):
            eng.entropy_of(frozenset({99}))

    def test_naive_out_of_range_raises(self):
        r = random_relation(5, 20, seed=3)
        with pytest.raises(IndexError):
            NaiveEntropyEngine(r).entropy_of(frozenset({7}))
