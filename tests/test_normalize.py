"""Tests for the classical normalisation baselines (BCNF / 4NF)."""

import pytest

from repro.core.budget import SearchBudget
from repro.core.maimon import Maimon
from repro.core.normalize import fourNF_decompose
from repro.core.schema import Schema
from repro.data.generators import decomposable
from repro.data.relation import Relation
from repro.entropy.oracle import make_oracle
from repro.fd.normalize import bcnf_decompose, is_superkey
from repro.quality.spurious import spurious_tuple_count


@pytest.fixture
def pure_mvd_relation():
    """emp ->> skill | lang with no FDs (cross products per employee)."""
    rows = []
    for emp, skills, langs in [
        ("ann", ["sql", "ml"], ["en", "fr"]),
        ("bob", ["ops"], ["en", "de"]),
        ("eve", ["ml", "viz", "ops"], ["en"]),
    ]:
        for s in skills:
            for lang in langs:
                rows.append((emp, s, lang))
    return Relation.from_rows(rows, ["emp", "skill", "lang"])


class TestIsSuperkey:
    def test_key_column(self):
        r = Relation.from_rows([(i, i % 2) for i in range(6)], ["a", "b"])
        omega = frozenset({0, 1})
        assert is_superkey(r, frozenset({0}), omega)
        assert not is_superkey(r, frozenset({1}), omega)


class TestBcnf:
    def test_fd_chain_decomposes(self):
        # a -> b -> c: classic transitive dependency; BCNF splits it.
        rows = [(i, i % 3, (i % 3) % 2) for i in range(12)]
        r = Relation.from_rows(rows, ["a", "b", "c"])
        schema = bcnf_decompose(r)
        assert schema.m >= 2
        assert schema.attributes == frozenset(range(3))
        # BCNF via FDs is lossless.
        assert spurious_tuple_count(r, schema) == 0

    def test_pure_mvd_not_decomposed(self, pure_mvd_relation):
        """No FDs -> BCNF leaves the relation whole; Maimon splits it."""
        schema = bcnf_decompose(pure_mvd_relation)
        assert schema.m == 1
        maimon = Maimon(pure_mvd_relation)
        assert any(ds.schema.m == 2 for ds in maimon.discover(0.0))

    def test_key_relation_already_bcnf(self):
        r = Relation.from_rows([(i, i * 7 % 13) for i in range(10)], ["a", "b"])
        # a is a key and a -> b, so the relation is already in BCNF.
        assert bcnf_decompose(r).m == 1


class TestFourNF:
    def test_pure_mvd_decomposed(self, pure_mvd_relation):
        schema = fourNF_decompose(pure_mvd_relation, eps=0.0)
        assert schema == Schema([frozenset({0, 1}), frozenset({0, 2})])
        assert spurious_tuple_count(pure_mvd_relation, schema) == 0

    def test_fig1_exact(self, fig1):
        schema = fourNF_decompose(fig1, eps=0.0)
        assert schema.m >= 2
        assert schema.is_acyclic()
        # Exact 4NF decomposition is lossless.
        assert spurious_tuple_count(fig1, schema) == 0

    def test_planted_chain(self):
        r = decomposable([["A", "B"], ["B", "C"], ["C", "D"]], 400, seed=3)
        schema = fourNF_decompose(r, eps=0.0)
        assert schema.m >= 3
        assert spurious_tuple_count(r, schema) == 0

    def test_result_among_asminer_outputs_or_finer(self, fig1):
        """4NF yields one decomposition; ASMiner enumerates many — the 4NF
        schema's J must be (near) zero like every exact schema."""
        o = make_oracle(fig1)
        schema = fourNF_decompose(fig1, eps=0.0, oracle=o)
        assert schema.j_measure(o) == pytest.approx(0.0, abs=1e-6)

    def test_budget_returns_partial(self, fig1):
        budget = SearchBudget(max_steps=1).start()
        budget.tick()
        schema = fourNF_decompose(fig1, eps=0.0, budget=budget)
        assert schema.m >= 1  # whole relation returned un-split

    def test_no_structure_no_split(self):
        # Two perfectly correlated columns cannot be separated.
        r = Relation.from_rows([(0, 0), (1, 1), (2, 2)], ["a", "b"])
        assert fourNF_decompose(r, eps=0.0).m == 1
