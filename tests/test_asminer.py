"""Tests for ASMiner and BuildAcyclicSchema (Theorems 7.3 / 7.4)."""

import pytest

from repro.core.asminer import ASMiner, build_acyclic_schema, enumerate_schemas
from repro.core.budget import SearchBudget
from repro.core.compat import pairwise_compatible
from repro.core.miner import mine_mvds
from repro.core.mvd import MVD
from repro.core.schema import Schema

A, B, C, D, E, F = range(6)
OMEGA6 = frozenset(range(6))

FIG1_SUPPORT = [
    MVD({B, D}, [{E}, {A, C, F}]),
    MVD({A, D}, [{C, F}, {B, E}]),
    MVD({A}, [{F}, {B, C, D, E}]),
]


class TestBuildAcyclicSchema:
    def test_fig1_support_rebuilds_fig1_schema(self):
        schema = build_acyclic_schema(OMEGA6, FIG1_SUPPORT)
        assert schema == Schema(
            [
                frozenset({A, F}),
                frozenset({A, C, D}),
                frozenset({A, B, D}),
                frozenset({B, D, E}),
            ]
        )

    def test_empty_mvd_set(self):
        schema = build_acyclic_schema(OMEGA6, [])
        assert schema == Schema([OMEGA6])

    def test_single_mvd(self):
        schema = build_acyclic_schema(OMEGA6, [MVD({A}, [{F}, {B, C, D, E}])])
        assert schema == Schema([frozenset({A, F}), frozenset({A, B, C, D, E})])

    def test_generalized_mvd_splits_into_m_parts(self):
        schema = build_acyclic_schema(
            frozenset(range(4)), [MVD({0}, [{1}, {2}, {3}])]
        )
        assert schema.m == 3
        assert schema.width == 2

    def test_redundant_mvd_skipped(self):
        # Second MVD applies to a bag it cannot split further.
        q = [
            MVD({A}, [{F}, {B, C, D, E}]),
            MVD({A}, [{F}, {B, C, D, E}]),  # exact duplicate is redundant
        ]
        schema = build_acyclic_schema(OMEGA6, q)
        assert schema.m == 2

    def test_result_always_acyclic(self):
        schema = build_acyclic_schema(OMEGA6, FIG1_SUPPORT)
        assert schema.is_acyclic()

    def test_theorem_74_support_subset(self):
        """MVD(T) of the *constructed* tree is contained in Q."""
        from repro.core.asminer import build_acyclic_schema_with_tree

        schema, tree = build_acyclic_schema_with_tree(OMEGA6, FIG1_SUPPORT)
        support = set(tree.support())
        assert support <= set(FIG1_SUPPORT)
        # Q was non-redundant here, so equality holds.
        assert support == set(FIG1_SUPPORT)

    def test_theorem_74_generalized_mvd_coarsenings(self):
        """With generalised MVDs, each support MVD of the constructed tree
        is a coarsening of (refined by) some MVD of Q with the same key."""
        from repro.core.asminer import build_acyclic_schema_with_tree

        q = [MVD({0}, [{1}, {2}, {3}])]
        __, tree = build_acyclic_schema_with_tree(frozenset(range(4)), q)
        for psi in tree.support():
            assert any(
                phi.key == psi.key and phi.refines(psi) for phi in q
            ), psi

    def test_covers_omega(self):
        schema = build_acyclic_schema(OMEGA6, FIG1_SUPPORT)
        assert schema.attributes == OMEGA6


class TestASMinerEnumeration:
    def test_empty_mvds_universal_schema(self, fig1_oracle):
        out = enumerate_schemas([], OMEGA6, oracle=fig1_oracle)
        assert len(out) == 1
        assert out[0].schema == Schema([OMEGA6])
        assert out[0].j_measure == 0.0

    def test_fig1_zero_eps(self, fig1, fig1_oracle):
        mined = mine_mvds(fig1, 0.0)
        out = enumerate_schemas(mined.mvds, OMEGA6, oracle=fig1_oracle)
        assert out, "expected at least one schema"
        for cand in out:
            # At eps=0 every enumerated schema must be exact (Cor. 5.2).
            assert cand.j_measure == pytest.approx(0.0, abs=1e-6)
            assert cand.schema.is_acyclic()
            assert cand.schema.attributes == OMEGA6
            assert pairwise_compatible(list(cand.support_set))

    def test_fig1_enumeration_beats_paper_schema(self, fig1, fig1_oracle):
        """M_0 contains the *full* MVD AD ->> B|C|E|F, which strictly
        refines the paper's AD ->> CF|BE — so ASMiner produces an exact
        schema at least as decomposed as the paper's 4-relation example."""
        mined = mine_mvds(fig1, 0.0)
        out = enumerate_schemas(mined.mvds, OMEGA6, oracle=fig1_oracle)
        assert any(cand.schema.m >= 4 for cand in out)
        best = max(cand.schema.m for cand in out)
        widths = [c.schema.width for c in out if c.schema.m == best]
        assert min(widths) <= 3  # as narrow as the paper's schema

    def test_dedupe(self, fig1, fig1_oracle):
        mined = mine_mvds(fig1, 0.0)
        out = enumerate_schemas(mined.mvds, OMEGA6, oracle=fig1_oracle)
        schemas = [cand.schema for cand in out]
        assert len(schemas) == len(set(schemas))

    def test_limit(self, fig1, fig1_oracle):
        mined = mine_mvds(fig1, 0.0)
        out = enumerate_schemas(mined.mvds, OMEGA6, oracle=fig1_oracle, limit=2)
        assert len(out) == 2

    def test_budget_stops_enumeration(self, fig1, fig1_oracle):
        mined = mine_mvds(fig1, 0.0)
        budget = SearchBudget(max_steps=1).start()
        budget.tick()
        out = enumerate_schemas(mined.mvds, OMEGA6, oracle=fig1_oracle, budget=budget)
        assert out == []

    def test_j_bound_with_eps(self, fig1_red, ):
        """Corollary 5.2: schemas from eps-MVD supports have J <= (m-1) eps."""
        from repro.entropy.oracle import make_oracle

        eps = 0.3
        oracle = make_oracle(fig1_red)
        mined = mine_mvds(fig1_red, eps)
        for cand in enumerate_schemas(mined.mvds, OMEGA6, oracle=oracle):
            m = cand.schema.m
            assert cand.j_measure <= (m - 1) * eps + 1e-6

    def test_incompatible_pair_counter(self):
        miner = ASMiner(
            [MVD({A}, [{B}, {C, D}]), MVD({B, C}, [{A}, {D}])],
            frozenset({A, B, C, D}),
        )
        assert miner.n_incompatible_pairs == 1
