"""Tests for the SQL-query entropy engine (Section 6.3 verbatim)."""

import itertools

import pytest

from repro.core.miner import MVDMiner
from repro.entropy.naive import NaiveEntropyEngine
from repro.entropy.oracle import make_oracle
from repro.entropy.sqlengine import SQLEntropyEngine
from tests.conftest import random_relation


def all_subsets(n):
    for r in range(n + 1):
        yield from (frozenset(c) for c in itertools.combinations(range(n), r))


class TestAgainstNaive:
    @pytest.mark.parametrize("block_size", [1, 2, 10])
    def test_all_subsets_agree(self, block_size):
        r = random_relation(4, 40, seed=7)
        naive = NaiveEntropyEngine(r)
        sql = SQLEntropyEngine(r, block_size=block_size)
        for attrs in all_subsets(4):
            assert sql.entropy_of(attrs) == pytest.approx(
                naive.entropy_of(attrs), abs=1e-9
            ), f"mismatch on {sorted(attrs)}"

    def test_fig1_paper_values(self, fig1):
        sql = SQLEntropyEngine(fig1)
        assert sql.entropy_of(frozenset(range(6))) == pytest.approx(2.0)
        assert sql.entropy_of(frozenset({1, 3, 4})) == pytest.approx(1.5)

    def test_empty_attrs_and_rows(self):
        import numpy as np
        from repro.data.relation import Relation

        r = Relation(np.zeros((0, 2), dtype=np.int64), ["a", "b"])
        sql = SQLEntropyEngine(r)
        assert sql.entropy_of(frozenset()) == 0.0
        assert sql.entropy_of(frozenset({0})) == 0.0


class TestCaching:
    def test_within_block_tables_persist(self):
        r = random_relation(4, 30, seed=9)
        sql = SQLEntropyEngine(r, block_size=4)
        sql.entropy_of(frozenset({0, 1, 2}))
        runs = sql.queries_run
        sql._entropy_memo.clear()
        sql.entropy_of(frozenset({0, 1, 2}))
        assert sql.queries_run == runs  # tables reused, no new combines

    def test_cross_cache_eviction_drops_tables(self):
        r = random_relation(6, 30, seed=11)
        sql = SQLEntropyEngine(r, block_size=2, cross_cache_size=1)
        sql.entropy_of(frozenset({0, 2}))
        sql.entropy_of(frozenset({1, 4}))
        sql.entropy_of(frozenset({0, 5}))
        assert len(sql._cross_tables) <= 1

    def test_block_size_validation(self):
        r = random_relation(2, 5, seed=0)
        with pytest.raises(ValueError):
            SQLEntropyEngine(r, block_size=0)

    def test_reset_stats(self):
        r = random_relation(3, 20, seed=2)
        sql = SQLEntropyEngine(r, block_size=1)
        sql.entropy_of(frozenset({0, 1}))
        assert sql.queries_run > 0
        sql.reset_stats()
        assert sql.queries_run == 0


class TestEndToEnd:
    def test_oracle_integration(self, fig1):
        oracle = make_oracle(fig1, engine="sql")
        assert isinstance(oracle.engine, SQLEntropyEngine)
        assert oracle.mutual_information({2, 5}, {1, 4}, {0, 3}) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_mining_agrees_with_pli(self, fig1):
        sql_result = MVDMiner(make_oracle(fig1, engine="sql")).mine(0.0)
        pli_result = MVDMiner(make_oracle(fig1, engine="pli")).mine(0.0)
        assert set(sql_result.mvds) == set(pli_result.mvds)


class TestOutOfRange:
    def test_sql_out_of_range_raises(self):
        r = random_relation(4, 20, seed=5)
        sql = SQLEntropyEngine(r, block_size=2)
        with pytest.raises(IndexError):
            sql.entropy_of(frozenset({0, 9}))
