"""Tests for MVD compatibility (Definition 7.1) and Theorem 7.2."""

import numpy as np
import pytest

from repro.core.compat import (
    compatible,
    incompatibility_graph,
    incompatible,
    pairwise_compatible,
)
from repro.core.mvd import MVD
from repro.core.schema import Schema

A, B, C, D, E, F = range(6)


class TestCompatibleExamples:
    def test_fig1_support_pairwise_compatible(self):
        """Example 3.2's support comes from one join tree (Thm 7.2)."""
        support = [
            MVD({B, D}, [{E}, {A, C, F}]),
            MVD({A, D}, [{C, F}, {B, E}]),
            MVD({A}, [{F}, {B, C, D, E}]),
        ]
        assert pairwise_compatible(support)

    def test_same_key_different_bipartitions(self):
        # X ->> AB|C vs X ->> AC|B (keys equal): compatible — they jointly
        # refine to the star schema {XA, XB, XC}.
        x, a, b, c = 0, 1, 2, 3
        m1 = MVD({x}, [{a, b}, {c}])
        m2 = MVD({x}, [{a, c}, {b}])
        assert compatible(m1, m2)
        assert compatible(m2, m1)  # symmetric

    def test_split_keys_incompatible(self):
        # key of m2 is split across dependents of m1: violates split-freeness.
        m1 = MVD({A}, [{B}, {C, D}])
        m2 = MVD({B, C}, [{A}, {D}])
        assert incompatible(m1, m2)

    def test_incompatible_when_no_split(self):
        # m2 does not split X u Ai for the only admissible i.
        m1 = MVD({A}, [{B}, {C}])
        m2 = MVD({A}, [{B}, {C}])
        # identical MVDs: definition's condition (2) fails (a single
        # dependent intersects), so an MVD is incompatible with itself.
        assert incompatible(m1, m2)


class TestTheorem72:
    """The support of any join tree is pairwise compatible."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_acyclic_schema_support(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 9))
        # Build a random join tree directly: random tree over m nodes with
        # random bags that respect running intersection by construction:
        # child bag = random subset of parent bag + fresh attributes.
        bags = [frozenset(rng.choice(n, size=min(n, 3), replace=False).tolist())]
        fresh = n
        for __ in range(int(rng.integers(1, 4))):
            parent = bags[int(rng.integers(0, len(bags)))]
            keep = [a for a in parent if rng.random() < 0.6]
            new_bag = frozenset(keep) | {fresh, fresh + 1}
            fresh += 2
            bags.append(new_bag)
        schema = Schema(bags)
        if not schema.is_acyclic():  # pragma: no cover - construction is acyclic
            pytest.skip("construction produced a cyclic schema")
        support = schema.join_tree().support()
        if len(support) >= 2:
            assert pairwise_compatible(support)


class TestIncompatibilityGraph:
    def test_graph_shape(self):
        mvds = [
            MVD({B, D}, [{E}, {A, C, F}]),
            MVD({A, D}, [{C, F}, {B, E}]),
            MVD({A}, [{F}, {B, C, D, E}]),
        ]
        adj = incompatibility_graph(mvds)
        assert len(adj) == 3
        assert all(not a for a in adj)  # all compatible -> no edges

    def test_graph_symmetric(self):
        mvds = [
            MVD({A}, [{B}, {C, D}]),
            MVD({B, C}, [{A}, {D}]),
            MVD({A, B}, [{C}, {D}]),
        ]
        adj = incompatibility_graph(mvds)
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                assert u in adj[v]

    def test_incompatible_edge_present(self):
        m1 = MVD({A}, [{B}, {C, D}])
        m2 = MVD({B, C}, [{A}, {D}])
        adj = incompatibility_graph([m1, m2])
        assert adj[0] == {1} and adj[1] == {0}
