"""Tests for JSON serialisation round-trips."""


from repro import io as rio
from repro.core.jointree import JoinTree
from repro.core.miner import mine_mvds
from repro.core.mvd import MVD
from repro.core.schema import Schema

COLS = tuple("ABCDEF")


class TestMvdRoundTrip:
    def test_with_names(self):
        m = MVD({0, 3}, [{2, 5}, {1, 4}])
        d = rio.mvd_to_dict(m, COLS)
        assert d == {"key": ["A", "D"], "dependents": [["B", "E"], ["C", "F"]]}
        assert rio.mvd_from_dict(d, COLS) == m

    def test_with_indices(self):
        m = MVD(set(), [{0}, {1, 2}])
        d = rio.mvd_to_dict(m)
        assert rio.mvd_from_dict(d) == m


class TestSchemaRoundTrip:
    def test_schema(self):
        s = Schema([frozenset({0, 1}), frozenset({1, 2})])
        assert rio.schema_from_dict(rio.schema_to_dict(s, COLS), COLS) == s

    def test_join_tree(self):
        jt = JoinTree([frozenset({0, 1}), frozenset({1, 2})], [(0, 1)])
        back = rio.join_tree_from_dict(rio.join_tree_to_dict(jt, COLS), COLS)
        assert back == jt


class TestMinerResultRoundTrip:
    def test_round_trip(self, fig1):
        result = mine_mvds(fig1, 0.0)
        d = rio.miner_result_to_dict(result, fig1.columns)
        back = rio.miner_result_from_dict(d, fig1.columns)
        assert back.eps == result.eps
        assert set(back.mvds) == set(result.mvds)
        assert back.min_seps == result.min_seps
        assert back.pairs_done == result.pairs_done

    def test_file_round_trip(self, fig1, tmp_path):
        result = mine_mvds(fig1, 0.0)
        path = str(tmp_path / "mined.json")
        rio.save_json(rio.miner_result_to_dict(result, fig1.columns), path)
        loaded = rio.load_json(path)
        back = rio.miner_result_from_dict(loaded, fig1.columns)
        assert set(back.mvds) == set(result.mvds)


class TestDiscoveredSchema:
    def test_serialisable(self, fig1):
        from repro.core.maimon import Maimon

        ds = Maimon(fig1).discover(0.0, limit=1)[0]
        d = rio.discovered_schema_to_dict(ds, fig1.columns)
        assert d["quality"]["n_relations"] == ds.schema.m
        assert len(d["support"]) == len(ds.support_set)
        # JSON-encodable end to end.
        import json

        json.dumps(d)
