"""Tests for the conditional-independence / graphical-model view."""

import numpy as np

from repro.core.cimap import (
    chow_liu_tree,
    independence_graph,
    tree_fit,
    tree_schema,
)
from repro.data.generators import nursery
from repro.data.relation import Relation
from repro.entropy.oracle import make_oracle


def planted_markov_chain(n_rows=3000, seed=5):
    """A 4-attribute Markov chain 0 - 1 - 2 - 3 with strong edges."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 3, size=n_rows)
    def child(parent, d=3, det=0.95):
        table = rng.integers(0, d, size=3)
        keep = rng.random(n_rows) < det
        return np.where(keep, table[parent], rng.integers(0, d, size=n_rows))
    b = child(a)
    c = child(b)
    d = child(c)
    return Relation.from_codes(np.column_stack([a, b, c, d]), list("ABCD"))


class TestChowLiu:
    def test_single_attr(self):
        r = Relation.from_rows([(0,), (1,)], ["a"])
        assert chow_liu_tree(make_oracle(r)) == []

    def test_edge_count(self):
        r = planted_markov_chain()
        edges = chow_liu_tree(make_oracle(r))
        assert len(edges) == 3

    def test_recovers_chain_edges(self):
        """On chain-sampled data the MI-MST is the chain itself."""
        r = planted_markov_chain()
        edges = {frozenset(e) for e in chow_liu_tree(make_oracle(r))}
        assert edges == {frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3})}

    def test_tree_fit_small_on_tree_data(self):
        r = planted_markov_chain()
        o = make_oracle(r)
        edges = chow_liu_tree(o)
        fit = tree_fit(o, edges)
        assert 0 <= fit < 0.1  # near-exact factorisation (sampling noise)

    def test_tree_fit_large_on_entangled_data(self):
        """Nursery's class attribute depends on everything: no tree fits."""
        r = nursery().sample_rows(1500, seed=2)
        o = make_oracle(r)
        fit = tree_fit(o, chow_liu_tree(o))
        assert fit > 0.5


class TestTreeSchema:
    def test_bags_are_edges(self):
        schema = tree_schema([(0, 1), (1, 2)], 3)
        assert set(schema.bags) == {frozenset({0, 1}), frozenset({1, 2})}
        assert schema.is_acyclic()

    def test_isolated_attributes_covered(self):
        schema = tree_schema([(0, 1)], 4)
        assert schema.attributes == frozenset(range(4))

    def test_empty(self):
        schema = tree_schema([], 2)
        assert schema.m == 2


class TestIndependenceGraph:
    def test_chain_skeleton(self):
        """Exact-CI skeleton of chain data: non-adjacent pairs are exactly
        those separated by some ε-separator; with modest eps the chain's
        non-edges (0,2), (0,3), (1,3) disappear."""
        r = planted_markov_chain(n_rows=4000, seed=9)
        o = make_oracle(r)
        adj = independence_graph(o, eps=0.05)
        assert 2 not in adj[0]
        assert 3 not in adj[0]
        assert 3 not in adj[1]
        # Direct chain edges stay (strongly dependent neighbours).
        assert 1 in adj[0]
        assert 2 in adj[1]
        assert 3 in adj[2]

    def test_symmetry(self):
        r = planted_markov_chain(n_rows=500, seed=11)
        adj = independence_graph(make_oracle(r), eps=0.1)
        for a, nbrs in enumerate(adj):
            for b in nbrs:
                assert a in adj[b]

    def test_fully_dependent_pair(self):
        r = Relation.from_rows([(0, 0), (1, 1), (2, 2)], ["a", "b"])
        adj = independence_graph(make_oracle(r), eps=0.0)
        assert adj[0] == {1}
