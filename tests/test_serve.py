"""Tests for the mining service layer (repro.serve).

Covers the registry/session/job building blocks directly, then drives the
real HTTP server end to end — including concurrent requests against one
warm session, whose responses must parity-match a direct ``Maimon`` run
and whose oracle counters must stay consistent under the session lock.
"""

import csv
import io
import json
import threading
import time
import urllib.request

import pytest

from repro import api
from repro.data.loaders import from_csv
from repro.data.relation import Relation
from repro.serve import (
    DatasetRegistry,
    JobManager,
    MiningService,
    RequestBudget,
    ServeAPIError,
    ServeClient,
    ServiceError,
    SessionCache,
    start_background,
)


def csv_text_of(relation) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(relation.columns)
    writer.writerows([str(v) for v in row] for row in relation.rows())
    return buf.getvalue()


@pytest.fixture(scope="module")
def fig1_csv_text(fig1):
    return csv_text_of(fig1)


@pytest.fixture(scope="module")
def fig1_reference(fig1_csv_text):
    """What a one-shot ``repro.api.run`` over the uploaded bytes produces.

    Served responses must match these payloads byte for byte (modulo the
    wall-clock field): the serving layer routes through the exact same
    task registry and stamps the exact same resolved spec + fingerprint.
    """
    relation = from_csv(io.StringIO(fig1_csv_text), name="fig1")
    mine = api.run(
        api.TaskRequest(task="mine", spec=api.MineSpec(eps=0.0)),
        relation=relation,
    ).payload
    schemas = api.run(
        api.TaskRequest(
            task="schemas",
            spec=api.SchemasSpec(eps=0.0, top=3, objective="relations"),
        ),
        relation=relation,
    ).payload
    profile = api.run(
        api.TaskRequest(task="profile", spec=api.ProfileSpec()),
        relation=relation,
    ).payload
    return {"relation": relation, "mine": mine, "schemas": schemas, "profile": profile}


def strip_clock(payload: dict) -> dict:
    """Drop the one wall-clock field; everything else must match exactly."""
    out = dict(payload)
    out.pop("elapsed", None)
    return out


# --------------------------------------------------------------------- #
# DatasetRegistry
# --------------------------------------------------------------------- #

class TestDatasetRegistry:
    def test_identical_uploads_dedupe_by_fingerprint(self, fig1_csv_text):
        reg = DatasetRegistry()
        a = reg.add_csv_text(fig1_csv_text, name="first")
        b = reg.add_csv_text(fig1_csv_text, name="second")
        assert a.dataset_id == b.dataset_id
        assert len(reg) == 1
        assert reg.entry(a.dataset_id).uploads == 2

    def test_fingerprint_matches_persist_layer(self, fig1):
        from repro.exec.persist import relation_fingerprint

        reg = DatasetRegistry()
        entry = reg.add(fig1)
        assert entry.dataset_id == relation_fingerprint(fig1)

    def test_lru_eviction(self):
        reg = DatasetRegistry(capacity=2)
        # Distinct *code structure* per relation (the fingerprint hashes
        # codes, not decoded values, so same-shaped data would dedupe).
        ids = [
            reg.add(
                Relation.from_rows([(j, 0) for j in range(i + 1)], ["a", "b"])
            ).dataset_id
            for i in range(3)
        ]
        assert len(reg) == 2
        assert ids[0] not in reg and ids[2] in reg
        assert reg.stats()["evictions"] == 1

    def test_unknown_id_raises(self):
        with pytest.raises(LookupError):
            DatasetRegistry().get("nope")

    def test_builtin(self):
        entry = DatasetRegistry().add_builtin("Bridges", scale=1.0, max_rows=50)
        assert entry.relation.n_rows > 0
        assert entry.source == "builtin:Bridges"


# --------------------------------------------------------------------- #
# SessionCache
# --------------------------------------------------------------------- #

class TestSessionCache:
    def test_same_config_reuses_warm_session(self, fig1):
        cache = SessionCache(capacity=2)
        try:
            s1 = cache.acquire("d1", fig1)
            cache.release(s1)
            s2 = cache.acquire("d1", fig1)
            cache.release(s2)
            assert s1 is s2
            assert cache.stats() == {
                "sessions": 1, "capacity": 2,
                "hits": 1, "misses": 1, "evictions": 0,
            }
        finally:
            cache.close()

    def test_different_engine_is_a_different_session(self, fig1):
        cache = SessionCache(capacity=4)
        try:
            with cache.lease("d1", fig1, engine="pli") as a:
                pass
            with cache.lease("d1", fig1, engine="naive") as b:
                pass
            assert a is not b and len(cache) == 2
        finally:
            cache.close()

    def test_lru_evicts_idle_sessions(self, fig1):
        cache = SessionCache(capacity=1)
        try:
            with cache.lease("d1", fig1):
                pass
            with cache.lease("d2", fig1):
                pass
            assert len(cache) == 1
            assert cache.stats()["evictions"] == 1
        finally:
            cache.close()

    def test_leased_session_never_evicted(self, fig1):
        cache = SessionCache(capacity=1)
        try:
            s1 = cache.acquire("d1", fig1)  # held: must survive the overflow
            with cache.lease("d2", fig1):
                pass
            assert s1._refs == 1
            assert any(d["dataset_id"] == "d1" for d in cache.list())
            cache.release(s1)
        finally:
            cache.close()

    def test_warm_session_keeps_mvd_cache(self, fig1):
        cache = SessionCache(capacity=2)
        try:
            with cache.lease("d1", fig1) as s:
                with s.lock:
                    r1 = s.maimon.mine_mvds(0.0)
            with cache.lease("d1", fig1) as s:
                with s.lock:
                    r2 = s.maimon.mine_mvds(0.0, budget=RequestBudget(max_seconds=30))
            assert r1 is r2  # budgeted request reuses the complete cached run
        finally:
            cache.close()


# --------------------------------------------------------------------- #
# JobManager
# --------------------------------------------------------------------- #

class TestJobManager:
    def test_success_and_polling(self):
        manager = JobManager(max_workers=1)
        try:
            job = manager.submit("mine", lambda j: {"answer": 42})
            done = manager.wait(job.id, timeout=10)
            assert done.status == "done"
            assert done.result == {"answer": 42}
            assert done.to_dict()["result"]["answer"] == 42
        finally:
            manager.shutdown()

    def test_error_is_reported_not_raised(self):
        manager = JobManager(max_workers=1)
        try:
            job = manager.submit("mine", lambda j: 1 / 0)
            done = manager.wait(job.id, timeout=10)
            assert done.status == "error"
            assert "ZeroDivisionError" in done.error
        finally:
            manager.shutdown()

    def test_cancel_queued_job(self):
        manager = JobManager(max_workers=1)
        release = threading.Event()
        try:
            blocker = manager.submit("mine", lambda j: release.wait(10) and {} or {})
            queued = manager.submit("mine", lambda j: {"ran": True})
            manager.cancel(queued.id)
            release.set()
            assert manager.wait(queued.id, timeout=10).status == "cancelled"
            assert manager.wait(blocker.id, timeout=10).status == "done"
        finally:
            manager.shutdown()

    def test_cancel_running_job_via_budget(self):
        manager = JobManager(max_workers=1)
        started = threading.Event()

        def spin(job):
            budget = job.budget(max_seconds=30)
            started.set()
            while not budget.exhausted:
                time.sleep(0.005)
            return {"partial": True}

        try:
            job = manager.submit("mine", spin)
            assert started.wait(10)
            manager.cancel(job.id)
            done = manager.wait(job.id, timeout=10)
            assert done.status == "cancelled"
            assert done.result == {"partial": True}  # partial result retained
        finally:
            manager.shutdown()

    def test_request_budget_deadline(self):
        budget = RequestBudget(max_seconds=0)
        assert budget.exhausted
        free = RequestBudget(max_seconds=None, cancel_event=threading.Event())
        assert not free.exhausted
        free.cancel_event.set()
        assert free.exhausted

    def test_unknown_job(self):
        manager = JobManager()
        try:
            with pytest.raises(LookupError):
                manager.get("nope")
        finally:
            manager.shutdown()


# --------------------------------------------------------------------- #
# MiningService (transport-free)
# --------------------------------------------------------------------- #

class TestMiningService:
    def test_mine_parity_with_direct_run(self, fig1_csv_text, fig1_reference):
        with MiningService(max_request_seconds=60) as service:
            ds = service.upload({"csv": fig1_csv_text, "name": "fig1"})
            job = service.submit_mine({"dataset_id": ds["dataset_id"], "eps": 0.0})
            done = service.jobs.wait(job.id, timeout=60)
            assert done.status == "done"
            assert strip_clock(done.result) == strip_clock(fig1_reference["mine"])

    def test_budget_zero_returns_empty_truncated(self, fig1_csv_text):
        with MiningService() as service:
            ds = service.upload({"csv": fig1_csv_text})
            job = service.submit_mine(
                {"dataset_id": ds["dataset_id"], "eps": 0.0, "budget": 0}
            )
            done = service.jobs.wait(job.id, timeout=60)
            assert done.status == "done"
            assert done.result["timed_out"] is True
            assert done.result["mvds"] == []

    def test_validation_errors(self, fig1_csv_text):
        with MiningService() as service:
            with pytest.raises(ServiceError, match="dataset_id"):
                service.submit_mine({"dataset_id": "missing"})
            with pytest.raises(ServiceError, match="csv"):
                service.upload({})
            with pytest.raises(ServiceError, match="engine"):
                ds = service.upload({"csv": fig1_csv_text})
                service.submit_mine({"dataset_id": ds["dataset_id"], "engine": "bogus"})
            with pytest.raises(ServiceError, match="eps"):
                service.submit_mine({"csv": fig1_csv_text, "eps": -1})


# --------------------------------------------------------------------- #
# HTTP end-to-end
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def http_serve():
    service = MiningService(max_request_seconds=60, job_workers=4)
    server, _ = start_background(service)
    client = ServeClient(f"http://127.0.0.1:{server.server_port}", timeout=120)
    yield client
    server.close()


class TestHTTPEndToEnd:
    def test_healthz(self, http_serve):
        health = http_serve.healthz()
        assert health["status"] == "ok"
        assert "sessions" in health and "jobs" in health

    def test_upload_and_listing(self, http_serve, fig1_csv_text):
        ds = http_serve.upload_csv(text=fig1_csv_text, name="fig1")
        assert ds["rows"] == 4 and ds["cols"] == 6
        listed = http_serve.datasets()["datasets"]
        assert any(d["dataset_id"] == ds["dataset_id"] for d in listed)

    def test_mine_schemas_profile_parity(
        self, http_serve, fig1_csv_text, fig1_reference
    ):
        ds = http_serve.upload_csv(text=fig1_csv_text, name="fig1")
        mine = http_serve.mine(ds["dataset_id"], eps=0.0)
        assert mine["status"] == "done"
        assert strip_clock(mine["result"]) == strip_clock(fig1_reference["mine"])

        schemas = http_serve.schemas(
            ds["dataset_id"], eps=0.0, top=3, objective="relations"
        )
        assert schemas["status"] == "done"
        assert schemas["result"] == fig1_reference["schemas"]

        profile = http_serve.profile(ds["dataset_id"])
        assert profile["status"] == "done"
        assert profile["result"] == fig1_reference["profile"]

    def test_async_submit_and_poll(self, http_serve, fig1_csv_text):
        ds = http_serve.upload_csv(text=fig1_csv_text)
        queued = http_serve.mine(ds["dataset_id"], eps=0.0, wait=False)
        assert "job_id" in queued
        done = http_serve.job(queued["job_id"], wait=60)
        assert done["status"] == "done"
        assert done["result"]["mvds"]

    def test_malformed_payload_gets_json_error_not_dead_socket(self, http_serve):
        """Payload-coercion failures must surface as 400 JSON errors."""
        with pytest.raises(ServeAPIError) as err:
            http_serve.request("POST", "/datasets", {"csv": 123})
        assert err.value.status == 400
        with pytest.raises(ServeAPIError) as err:
            http_serve.request("POST", "/schemas", {"csv": "A\n1\n", "top": "abc"})
        assert err.value.status == 400

    def test_profile_budget_zero_is_truncated(self, http_serve, fig1_csv_text):
        """Profile requests honour deadlines too (budget reaches TANE)."""
        ds = http_serve.upload_csv(text=fig1_csv_text)
        resp = http_serve.profile(ds["dataset_id"], budget=0)
        assert resp["status"] == "done"
        assert resp["result"]["truncated"] is True
        assert resp["result"]["fds"] == []
        assert len(resp["result"]["columns"]) == 6  # entropies still profiled

    def test_unknown_dataset_404(self, http_serve):
        with pytest.raises(ServeAPIError) as err:
            http_serve.mine("deadbeef", eps=0.0)
        assert err.value.status == 404

    def test_unknown_route_404(self, http_serve):
        with pytest.raises(ServeAPIError) as err:
            http_serve.request("GET", "/bogus")
        assert err.value.status == 404

    def test_raw_curl_style_request(self, http_serve, fig1_csv_text):
        """The documented curl flow: plain JSON POST, no client library."""
        body = json.dumps({"csv": fig1_csv_text, "name": "curl"}).encode()
        req = urllib.request.Request(
            http_serve.base_url + "/datasets",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.status == 201
            assert json.loads(resp.read())["rows"] == 4


class TestConcurrentWarmSession:
    def test_concurrent_requests_parity_and_counters(self, fig1_reference):
        """N concurrent identical mines over ONE warm session.

        Every response must equal the direct one-shot run, and the
        session's oracle counters must equal a single run's counters
        afterwards: the lock serialized the first (cold) request and the
        phase-1 cache answered the rest without touching the oracle.
        """
        n_threads = 8
        service = MiningService(max_request_seconds=60, job_workers=4)
        server, _ = start_background(service)
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            ds = ServeClient(base).upload_csv(
                text=csv_text_of(fig1_reference["relation"]), name="fig1"
            )
            results, errors = [], []

            def hit():
                try:
                    resp = ServeClient(base, timeout=120).mine(
                        ds["dataset_id"], eps=0.0
                    )
                    results.append(resp)
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=hit) for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == n_threads
            expected = strip_clock(fig1_reference["mine"])
            for resp in results:
                assert resp["status"] == "done"
                assert strip_clock(resp["result"]) == expected

            [session] = ServeClient(base).healthz()["session_list"]
            assert session["requests"] == n_threads
            # Counters consistent with exactly one cold run: concurrent
            # requests serialized on the session instead of double-counting.
            assert session["oracle.queries"] == expected["entropy_queries"]
            assert session["oracle.evals"] == expected["entropy_evals"]
        finally:
            server.close()

    def test_concurrent_requests_different_datasets(self, fig1, fig1_red):
        service = MiningService(max_request_seconds=60, job_workers=4)
        server, _ = start_background(service)
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            client = ServeClient(base, timeout=120)
            ids = [
                client.upload_csv(text=csv_text_of(rel), name=f"r{i}")["dataset_id"]
                for i, rel in enumerate((fig1, fig1_red))
            ]
            out = {}

            def hit(dataset_id):
                out[dataset_id] = ServeClient(base, timeout=120).mine(
                    dataset_id, eps=0.0
                )

            threads = [threading.Thread(target=hit, args=(d,)) for d in ids]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(out[d]["status"] == "done" for d in ids)
            # fig1 satisfies exact MVDs, fig1_red loses some: distinct answers.
            assert out[ids[0]]["result"]["mvds"] != out[ids[1]]["result"]["mvds"]
            assert len(ServeClient(base).healthz()["session_list"]) == 2
        finally:
            server.close()
