"""Serving-layer integration of repro.delta, plus the serve bugfix sweep.

Covers the append endpoint end to end (HTTP), registry lineage semantics,
warm-session carry-over on advance, the parse-outside-the-lock guarantee
of ``DatasetRegistry``, and the structured error envelopes for cancelling
finished jobs / polling unknown jobs.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import (
    DatasetRegistry,
    JobManager,
    MiningService,
    ServeAPIError,
    ServeClient,
    ServiceError,
    SessionCache,
    start_background,
)
from repro.serve.jobs import JobFinishedError


ROWS_V1 = [
    ["a", "x", "1"], ["a", "y", "1"], ["b", "x", "2"], ["b", "y", "2"],
]
ROWS_V2 = [["c", "x", "3"], ["c", "y", "3"]]
COLUMNS = ["A", "B", "C"]


# --------------------------------------------------------------------- #
# Registry: lineage + lock hygiene
# --------------------------------------------------------------------- #

class TestRegistryEvolution:
    def test_append_creates_lineage_entry(self):
        registry = DatasetRegistry()
        parent = registry.add_rows(ROWS_V1, COLUMNS, name="ev")
        child, parent2, delta = registry.append_rows(parent.dataset_id, ROWS_V2)
        assert parent2 is parent
        assert child.parent_id == parent.dataset_id
        assert child.delta_digest == delta.digest
        assert child.dataset_id == delta.child_fingerprint(parent.dataset_id)
        assert child.relation.n_rows == len(ROWS_V1) + len(ROWS_V2)
        assert child.describe()["parent_id"] == parent.dataset_id
        assert child.dataset_id in registry

    def test_identical_append_dedupes_onto_same_child(self):
        registry = DatasetRegistry()
        parent = registry.add_rows(ROWS_V1, COLUMNS)
        c1, _, _ = registry.append_rows(parent.dataset_id, ROWS_V2)
        c2, _, _ = registry.append_rows(parent.dataset_id, ROWS_V2)
        assert c1 is c2
        assert c2.uploads == 2

    def test_append_to_unknown_dataset_raises(self):
        registry = DatasetRegistry()
        with pytest.raises(LookupError):
            registry.append_rows("nope", ROWS_V2)

    def test_slow_parse_does_not_hold_the_registry_lock(self, monkeypatch):
        """One giant CSV upload must not stall concurrent lookups.

        A slow-parse stub simulates the giant upload; a concurrent reader
        thread must get through ``entry()``/``list()`` while the parse is
        still running — i.e. parsing/fingerprinting happen outside the
        registry lock.
        """
        registry = DatasetRegistry()
        seeded = registry.add_rows(ROWS_V1, COLUMNS, name="seed")
        parse_started = threading.Event()
        release_parse = threading.Event()
        real_from_csv = __import__(
            "repro.data.loaders", fromlist=["from_csv"]
        ).from_csv

        def slow_from_csv(*args, **kwargs):
            parse_started.set()
            assert release_parse.wait(10), "reader never released the parse"
            return real_from_csv(*args, **kwargs)

        monkeypatch.setattr(
            "repro.serve.registry.from_csv", slow_from_csv
        )
        uploader = threading.Thread(
            target=registry.add_csv_text, args=("A,B,C\na,x,1\n",),
        )
        uploader.start()
        try:
            assert parse_started.wait(10)
            # The upload is mid-parse: lookups must not block on it.
            t0 = time.perf_counter()
            assert registry.entry(seeded.dataset_id) is seeded
            assert any(e["name"] == "seed" for e in registry.list())
            assert len(registry) == 1
            elapsed = time.perf_counter() - t0
            assert elapsed < 1.0, f"registry lookups stalled {elapsed:.2f}s"
        finally:
            release_parse.set()
            uploader.join(timeout=10)
        assert len(registry) == 2  # the slow upload landed eventually


# --------------------------------------------------------------------- #
# Session advance
# --------------------------------------------------------------------- #

class TestSessionAdvance:
    def _versions(self):
        registry = DatasetRegistry()
        parent = registry.add_rows(ROWS_V1, COLUMNS, name="ev")
        child, _, delta = registry.append_rows(parent.dataset_id, ROWS_V2)
        return parent, child, delta

    def test_warm_parent_is_rekeyed_and_patched(self):
        parent, child, delta = self._versions()
        cache = SessionCache(capacity=4)
        with cache.lease(parent.dataset_id, parent.relation) as s:
            with s.lock:
                s.maimon.mine_mvds(0.0)
            warm_maimon = s.maimon
        session, warm, stats = cache.advance(
            parent.dataset_id, child.dataset_id, child.relation, delta,
            engine="pli", workers=1, persist=False, cache_dir=None,
        )
        try:
            assert warm is True
            assert session.maimon is warm_maimon  # same warm state, re-keyed
            assert session.dataset_id == child.dataset_id
            assert stats["patched"] > 0
            assert len(cache) == 1  # parent key is gone
        finally:
            cache.release(session)

    def test_no_warm_parent_starts_cold(self):
        parent, child, delta = self._versions()
        cache = SessionCache(capacity=4)
        session, warm, stats = cache.advance(
            parent.dataset_id, child.dataset_id, child.relation, delta,
            engine="pli", workers=1, persist=False, cache_dir=None,
        )
        try:
            assert warm is False and stats == {}
            assert session.dataset_id == child.dataset_id
        finally:
            cache.release(session)

    def test_existing_child_session_is_joined_not_displaced(self):
        """advance() with a live child session pins it instead of racing it."""
        parent, child, delta = self._versions()
        cache = SessionCache(capacity=4)
        busy = cache.acquire(child.dataset_id, child.relation)
        try:
            session, warm, _ = cache.advance(
                parent.dataset_id, child.dataset_id, child.relation, delta,
                engine="pli", workers=1, persist=False, cache_dir=None,
            )
            try:
                assert warm is False
                assert session is busy  # joined, not displaced
            finally:
                cache.release(session)
        finally:
            cache.release(busy)

    def test_unlinked_leased_session_closed_on_last_release(self):
        """A session displaced from the cache mid-lease must not leak.

        Displacement can only happen in the re-insert race window of
        :meth:`SessionCache.advance`; simulate it directly and assert the
        last release closes the orphaned session (never mid-request).
        """
        parent, child, _ = self._versions()
        cache = SessionCache(capacity=4)
        busy = cache.acquire(child.dataset_id, child.relation)
        closed = []
        orig_close = busy.maimon.close
        busy.maimon.close = lambda: (closed.append(True), orig_close())[1]
        with cache._lock:  # a racing warm advance takes over the key
            del cache._sessions[busy.key]
        assert not closed
        cache.release(busy)
        assert closed

    def test_leased_parent_is_left_alone(self):
        parent, child, delta = self._versions()
        cache = SessionCache(capacity=4)
        pinned = cache.acquire(parent.dataset_id, parent.relation)
        try:
            session, warm, _ = cache.advance(
                parent.dataset_id, child.dataset_id, child.relation, delta,
                engine="pli", workers=1, persist=False, cache_dir=None,
            )
            try:
                assert warm is False
                assert session is not pinned
                # The old version keeps serving under its own key.
                assert pinned.dataset_id == parent.dataset_id
                assert pinned.relation.n_rows == len(ROWS_V1)
            finally:
                cache.release(session)
        finally:
            cache.release(pinned)


# --------------------------------------------------------------------- #
# HTTP end to end
# --------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def http_serve():
    service = MiningService(max_request_seconds=60, job_workers=2)
    server, _ = start_background(service)
    client = ServeClient(f"http://127.0.0.1:{server.server_port}", timeout=120)
    yield client
    server.close()


class TestAppendEndpoint:
    def test_append_remines_and_diffs(self, http_serve):
        ds = http_serve.upload_rows(ROWS_V1, COLUMNS, name="evolve")
        first = http_serve.mine(ds["dataset_id"], eps=0.0)
        assert first["status"] == "done"
        resp = http_serve.append_rows(ds["dataset_id"], ROWS_V2, eps=0.0)
        assert resp["status"] == "done"
        result = resp["result"]
        assert result["parent_id"] == ds["dataset_id"]
        assert result["dataset_id"] != ds["dataset_id"]
        assert result["rows"] == len(ROWS_V1) + len(ROWS_V2)
        assert result["delta"]["n_rows"] == len(ROWS_V2)
        assert result["delta"]["new_domains"] == {"A": 1, "C": 1}
        assert result["advance"]["warm_session"] is True
        diff = result["diff"]
        assert diff["kind"] == "mine"
        assert isinstance(diff["mvds"]["added"], list)
        # The re-mined artefact equals a cold mine of the child version.
        cold = http_serve.mine(result["dataset_id"], eps=0.0)
        assert cold["result"]["mvds"] == result["result"]["mvds"]
        assert cold["result"]["min_seps"] == result["result"]["min_seps"]
        # The child is listed with its lineage.
        listed = {
            d["dataset_id"]: d for d in http_serve.datasets()["datasets"]
        }
        assert listed[result["dataset_id"]]["parent_id"] == ds["dataset_id"]

    def test_append_without_prior_mine_has_no_diff_baseline(self, http_serve):
        ds = http_serve.upload_rows(ROWS_V1, COLUMNS, name="nodiff")
        resp = http_serve.append_rows(ds["dataset_id"], ROWS_V2, eps=0.125)
        assert resp["status"] == "done"
        assert resp["result"]["diff"] is None

    def test_append_validation(self, http_serve):
        ds = http_serve.upload_rows(ROWS_V1, COLUMNS, name="val")
        with pytest.raises(ServeAPIError) as err:
            http_serve.append_rows(ds["dataset_id"], [])
        assert err.value.status == 400
        with pytest.raises(ServeAPIError) as err:
            http_serve.append_rows("missing-id", ROWS_V2)
        assert err.value.status == 404
        with pytest.raises(ServeAPIError) as err:
            http_serve.append_rows(ds["dataset_id"], [["wrong", "arity"]])
        assert err.value.status == 400


# --------------------------------------------------------------------- #
# Bugfix sweep: job error envelopes
# --------------------------------------------------------------------- #

class TestJobErrorEnvelopes:
    def test_cancel_finished_job_raises_job_finished(self):
        manager = JobManager(max_workers=1)
        try:
            job = manager.submit("t", lambda j: {"ok": True})
            manager.wait(job.id, timeout=10)
            assert job.status == "done"
            with pytest.raises(JobFinishedError) as err:
                manager.cancel(job.id)
            assert err.value.job is job
            # The finished result must stay unflagged by the late cancel.
            assert not job.cancel_event.is_set()
            assert job.to_dict()["cancel_requested"] is False
        finally:
            manager.shutdown()

    def test_service_maps_finished_cancel_to_409(self):
        with MiningService(max_request_seconds=10) as service:
            job = service.jobs.submit("t", lambda j: {"ok": True})
            service.jobs.wait(job.id, timeout=10)
            with pytest.raises(ServiceError) as err:
                service.cancel(job.id)
            assert err.value.status == 409
            assert err.value.extra["code"] == "job_finished"
            assert err.value.extra["job_status"] == "done"

    def test_service_maps_unknown_job_to_404(self):
        with MiningService(max_request_seconds=10) as service:
            with pytest.raises(ServiceError) as err:
                service.job_payload("missing")
            assert err.value.status == 404
            assert err.value.extra["code"] == "unknown_job"
            assert err.value.extra["job_id"] == "missing"

    def test_http_envelopes_are_structured(self, http_serve):
        # Unknown job over HTTP: 404 with code + job_id keys.
        import json
        import urllib.error
        import urllib.request

        base = http_serve.base_url
        try:
            urllib.request.urlopen(f"{base}/jobs/notthere", timeout=30)
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
            payload = json.loads(exc.read().decode())
            assert payload["code"] == "unknown_job"
            assert payload["job_id"] == "notthere"
            assert "error" in payload
        # Cancel of a finished job over HTTP: 409 with the real status.
        ds = http_serve.upload_rows(ROWS_V1, COLUMNS, name="envelope")
        done = http_serve.mine(ds["dataset_id"], eps=0.0)
        req = urllib.request.Request(
            f"{base}/jobs/{done['job_id']}/cancel", data=b"", method="POST"
        )
        try:
            urllib.request.urlopen(req, timeout=30)
            raise AssertionError("expected HTTP 409")
        except urllib.error.HTTPError as exc:
            assert exc.code == 409
            payload = json.loads(exc.read().decode())
            assert payload["code"] == "job_finished"
            assert payload["job_status"] == "done"
