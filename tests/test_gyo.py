"""Tests for GYO reduction and join-tree construction."""


from repro.hypergraph.gyo import (
    build_join_tree_edges,
    check_running_intersection,
    gyo_reduction,
    is_acyclic,
    tree_components,
)


def fs(*xs):
    return frozenset(xs)


FIG1_BAGS = [fs(0, 5), fs(0, 2, 3), fs(0, 1, 3), fs(1, 3, 4)]  # AF ACD ABD BDE
TRIANGLE = [fs(0, 1), fs(1, 2), fs(0, 2)]


class TestGyoReduction:
    def test_acyclic_reduces_to_nothing(self):
        assert gyo_reduction(FIG1_BAGS) == []

    def test_triangle_is_irreducible(self):
        residue = gyo_reduction(TRIANGLE)
        assert set(residue) == set(TRIANGLE)

    def test_single_bag(self):
        assert gyo_reduction([fs(0, 1, 2)]) == []

    def test_contained_bags_absorbed(self):
        assert gyo_reduction([fs(0, 1), fs(0), fs(1)]) == []

    def test_duplicate_bags(self):
        assert gyo_reduction([fs(0, 1), fs(0, 1)]) == []

    def test_empty_input(self):
        assert gyo_reduction([]) == []

    def test_cyclic_core_extracted(self):
        # Triangle plus an ear: the ear goes away, the triangle stays.
        bags = TRIANGLE + [fs(2, 7, 8)]
        residue = gyo_reduction(bags)
        assert set(residue) == set(TRIANGLE)


class TestIsAcyclic:
    def test_known_cases(self):
        assert is_acyclic(FIG1_BAGS)
        assert not is_acyclic(TRIANGLE)
        assert is_acyclic([fs(0, 1, 2)])
        assert is_acyclic([])
        # Star: pairwise overlap through a hub attribute.
        assert is_acyclic([fs(0, 1), fs(0, 2), fs(0, 3)])
        # 4-cycle.
        assert not is_acyclic([fs(0, 1), fs(1, 2), fs(2, 3), fs(3, 0)])

    def test_big_bag_covers_cycle(self):
        # Adding a bag containing the whole triangle makes it acyclic
        # (alpha-acyclicity is not hereditary -- the classic example).
        assert is_acyclic(TRIANGLE + [fs(0, 1, 2)])


class TestRunningIntersection:
    def test_valid_tree(self):
        edges = build_join_tree_edges(FIG1_BAGS)
        assert edges is not None
        assert check_running_intersection(FIG1_BAGS, edges)

    def test_wrong_edge_count(self):
        assert not check_running_intersection(FIG1_BAGS, [(0, 1)])

    def test_cycle_rejected(self):
        bags = [fs(0), fs(1), fs(2)]
        assert not check_running_intersection(bags, [(0, 1), (1, 2), (0, 2)])

    def test_violating_tree(self):
        # Attribute 0 appears in bags 0 and 2 but not on the path via bag 1.
        bags = [fs(0, 1), fs(1, 2), fs(0, 2)]
        edges = [(0, 1), (1, 2)]
        assert not check_running_intersection(bags, edges)

    def test_empty(self):
        assert check_running_intersection([], [])

    def test_self_loop_rejected(self):
        assert not check_running_intersection([fs(0), fs(1)], [(0, 0)])


class TestBuildJoinTree:
    def test_fig1(self):
        edges = build_join_tree_edges(FIG1_BAGS)
        assert len(edges) == 3
        # The separators must be {A}, {AD}, {BD} (indices {0},{0,3},{1,3}).
        seps = {frozenset(FIG1_BAGS[u] & FIG1_BAGS[v]) for u, v in edges}
        assert seps == {fs(0), fs(0, 3), fs(1, 3)}

    def test_cyclic_returns_none(self):
        assert build_join_tree_edges(TRIANGLE) is None

    def test_single_and_empty(self):
        assert build_join_tree_edges([fs(0, 1)]) == []
        assert build_join_tree_edges([]) == []

    def test_disconnected_bags(self):
        # Disjoint bags form a valid (degenerate) join tree with empty
        # separators.
        edges = build_join_tree_edges([fs(0, 1), fs(2, 3)])
        assert edges is not None
        assert check_running_intersection([fs(0, 1), fs(2, 3)], edges)


class TestTreeComponents:
    def test_split(self):
        edges = [(0, 1), (1, 2), (1, 3)]
        side_a, side_b = tree_components(4, edges, (1, 2))
        assert set(side_a) == {0, 1, 3} or set(side_a) == {2}
        assert set(side_a) | set(side_b) == {0, 1, 2, 3}
        assert not set(side_a) & set(side_b)
