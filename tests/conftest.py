"""Shared fixtures: the paper's worked examples and small random relations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import (
    lemma54_example,
    nursery,
    paper_running_example,
)
from repro.data.relation import Relation
from repro.entropy.oracle import make_oracle


@pytest.fixture(scope="session")
def fig1():
    """The 4-row relation of Fig. 1 (exact acyclic schema holds)."""
    return paper_running_example()


@pytest.fixture(scope="session")
def fig1_red():
    """Fig. 1 with the red 5th tuple (schema only approximate)."""
    return paper_running_example(with_red_tuple=True)


@pytest.fixture(scope="session")
def lemma54():
    """The 2-tuple X A B C relation of Section 5.2."""
    return lemma54_example()


@pytest.fixture(scope="session")
def fig1_oracle(fig1):
    return make_oracle(fig1)


@pytest.fixture(scope="session")
def fig1_red_oracle(fig1_red):
    return make_oracle(fig1_red)


@pytest.fixture(scope="session")
def lemma54_oracle(lemma54):
    return make_oracle(lemma54)


@pytest.fixture(scope="session")
def nursery_small():
    """A 1500-row sample of the reconstructed Nursery (kept small for CI)."""
    return nursery().sample_rows(1500, seed=7)


def random_relation(n_cols: int, n_rows: int, seed: int, max_domain: int = 3) -> Relation:
    """Small dense random relation for property tests."""
    rng = np.random.default_rng(seed)
    domains = rng.integers(1, max_domain + 1, size=n_cols)
    codes = rng.integers(0, domains, size=(n_rows, n_cols))
    return Relation.from_codes(codes, [f"A{j}" for j in range(n_cols)])


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
