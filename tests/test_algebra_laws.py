"""Algebraic laws of the core structures, property-tested.

These pin down the lattice/order theory the mining algorithms silently rely
on: the refinement partial order on MVDs, the join as greatest lower bound
in that order, and the relational-algebra laws of the mini SQL engine.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.mvd import MVD
from repro.sqlsim.engine import Table


# --------------------------------------------------------------------- #
# Random MVD strategy: partitions of {1..5} with key {0}
# --------------------------------------------------------------------- #

def mvd_from_labels(labels):
    """Build an MVD over attrs 1..len(labels) from restricted-growth labels."""
    blocks = {}
    for attr, lab in enumerate(labels, start=1):
        blocks.setdefault(lab, set()).add(attr)
    if len(blocks) < 2:
        return None
    return MVD({0}, list(blocks.values()))


labels_strategy = st.lists(st.integers(0, 3), min_size=4, max_size=6)


class TestRefinementOrder:
    @settings(max_examples=60, deadline=None)
    @given(labels_strategy)
    def test_reflexive(self, labels):
        m = mvd_from_labels(labels)
        if m is None:
            return
        assert m.refines(m)

    @settings(max_examples=60, deadline=None)
    @given(labels_strategy, labels_strategy)
    def test_antisymmetric(self, la, lb):
        a, b = mvd_from_labels(la), mvd_from_labels(lb)
        if a is None or b is None or len(la) != len(lb):
            return
        if a.refines(b) and b.refines(a):
            assert a == b

    @settings(max_examples=60, deadline=None)
    @given(labels_strategy, labels_strategy, labels_strategy)
    def test_transitive(self, la, lb, lc):
        if not (len(la) == len(lb) == len(lc)):
            return
        a, b, c = (mvd_from_labels(x) for x in (la, lb, lc))
        if a is None or b is None or c is None:
            return
        if a.refines(b) and b.refines(c):
            assert a.refines(c)


class TestJoinIsMeet:
    @settings(max_examples=60, deadline=None)
    @given(labels_strategy, labels_strategy)
    def test_join_commutative(self, la, lb):
        if len(la) != len(lb):
            return
        a, b = mvd_from_labels(la), mvd_from_labels(lb)
        if a is None or b is None:
            return
        assert a.join(b) == b.join(a)

    @settings(max_examples=40, deadline=None)
    @given(labels_strategy, labels_strategy, labels_strategy)
    def test_join_associative(self, la, lb, lc):
        if not (len(la) == len(lb) == len(lc)):
            return
        a, b, c = (mvd_from_labels(x) for x in (la, lb, lc))
        if a is None or b is None or c is None:
            return
        assert a.join(b).join(c) == a.join(b.join(c))

    @settings(max_examples=60, deadline=None)
    @given(labels_strategy, labels_strategy)
    def test_join_is_greatest_common_refinement(self, la, lb):
        if len(la) != len(lb):
            return
        a, b = mvd_from_labels(la), mvd_from_labels(lb)
        if a is None or b is None:
            return
        j = a.join(b)
        assert j.refines(a) and j.refines(b)

    @settings(max_examples=60, deadline=None)
    @given(labels_strategy)
    def test_join_idempotent(self, labels):
        m = mvd_from_labels(labels)
        if m is None:
            return
        assert m.join(m) == m


# --------------------------------------------------------------------- #
# Relational-algebra laws of the mini SQL engine
# --------------------------------------------------------------------- #

rows_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=0, max_size=12
)


def nested_loop_join(ra, rb, key_a=0, key_b=0):
    return sorted(
        a + b for a, b in itertools.product(ra, rb) if a[key_a] == b[key_b]
    )


class TestSqlJoinLaws:
    @settings(max_examples=60, deadline=None)
    @given(rows_strategy, rows_strategy)
    def test_join_matches_nested_loops(self, ra, rb):
        ta = Table("a", ["k", "x"], ra)
        tb = Table("b", ["k", "y"], rb)
        out = ta.join(tb, on="k")
        assert sorted(out.rows) == nested_loop_join(ra, rb)

    @settings(max_examples=60, deadline=None)
    @given(rows_strategy, rows_strategy)
    def test_join_commutative_up_to_column_swap(self, ra, rb):
        ta = Table("a", ["k", "x"], ra)
        tb = Table("b", ["k", "y"], rb)
        ab = {r for r in ta.join(tb, on="k").rows}
        ba = {(r[2], r[3], r[0], r[1]) for r in tb.join(ta, on="k").rows}
        assert ab == ba

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_group_count_partitions_rows(self, ra):
        t = Table("a", ["k", "x"], ra)
        grp = t.group_count("k")
        assert sum(c for __, c in grp.rows) == len(ra)

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_semijoin_subset_of_input(self, ra):
        t = Table("a", ["k", "x"], ra)
        other = Table("b", ["k"], [(0,), (2,)])
        semi = t.semijoin(other, on="k")
        assert set(semi.rows) <= set(ra)
        assert all(r[0] in (0, 2) for r in semi.rows)
