"""Tests for the MVD class and its algebra."""

import pytest

from repro.core.mvd import MVD


def mvd(key, *deps):
    return MVD(key, deps)


class TestConstruction:
    def test_canonical_order(self):
        m1 = MVD({0}, [{3, 4}, {1, 2}])
        m2 = MVD({0}, [{1, 2}, {4, 3}])
        assert m1 == m2
        assert hash(m1) == hash(m2)
        assert m1.dependents[0] == frozenset({1, 2})

    def test_needs_two_dependents(self):
        with pytest.raises(ValueError, match=">= 2 dependents"):
            MVD({0}, [{1, 2}])

    def test_empty_dependent_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            MVD({0}, [{1}, set()])

    def test_overlap_with_key_rejected(self):
        with pytest.raises(ValueError, match="overlaps key"):
            MVD({0, 1}, [{1, 2}, {3}])

    def test_overlapping_dependents_rejected(self):
        with pytest.raises(ValueError, match="pairwise disjoint"):
            MVD({0}, [{1, 2}, {2, 3}])

    def test_empty_key_allowed(self):
        m = MVD(set(), [{0}, {1}])
        assert m.key == frozenset()

    def test_finest(self):
        m = MVD.finest({0}, range(4))
        assert m.dependents == (frozenset({1}), frozenset({2}), frozenset({3}))

    def test_finest_needs_room(self):
        with pytest.raises(ValueError):
            MVD.finest({0, 1}, range(3))


class TestStructure:
    def test_basic_properties(self):
        m = mvd({0}, {1, 2}, {3}, {4})
        assert m.m == 3
        assert not m.is_standard
        assert m.attributes == frozenset(range(5))
        assert mvd({0}, {1}, {2}).is_standard

    def test_dependent_of(self):
        m = mvd({0}, {1, 2}, {3})
        assert m.dependent_of(1) == m.dependent_of(2)
        assert m.dependent_of(3) != m.dependent_of(1)
        assert m.dependent_of(0) is None
        assert m.dependent_of(9) is None

    def test_separates(self):
        m = mvd({0}, {1, 2}, {3})
        assert m.separates(1, 3)
        assert not m.separates(1, 2)
        assert not m.separates(0, 1)  # key attr not in any dependent

    def test_as_standard(self):
        m = mvd({0}, {1}, {2}, {3})
        std = m.as_standard(0)
        assert std == mvd({0}, {1}, {2, 3})
        assert mvd({0}, {1}, {2}).as_standard(0) == mvd({0}, {1}, {2})


class TestRefinement:
    def test_refines_reflexive(self):
        m = mvd({0}, {1}, {2, 3})
        assert m.refines(m)
        assert not m.strictly_refines(m)

    def test_refines_example(self):
        fine = mvd({0}, {1}, {2}, {3})
        coarse = mvd({0}, {1, 2}, {3})
        assert fine.refines(coarse)
        assert fine.strictly_refines(coarse)
        assert not coarse.refines(fine)

    def test_refines_requires_same_key(self):
        assert not mvd({0}, {1}, {2}).refines(mvd({3}, {1}, {2}))

    def test_incomparable(self):
        m1 = mvd({0}, {1, 2}, {3, 4})
        m2 = mvd({0}, {1, 3}, {2, 4})
        assert not m1.refines(m2)
        assert not m2.refines(m1)


class TestJoinMerge:
    def test_join_refines_both(self):
        m1 = mvd({0}, {1, 2}, {3, 4})
        m2 = mvd({0}, {1, 3}, {2, 4})
        j = m1.join(m2)
        assert j == mvd({0}, {1}, {2}, {3}, {4})
        assert j.refines(m1) and j.refines(m2)

    def test_join_drops_empty_intersections(self):
        m1 = mvd({0}, {1}, {2, 3})
        m2 = mvd({0}, {1, 2}, {3})
        assert m1.join(m2) == mvd({0}, {1}, {2}, {3})

    def test_join_requires_same_key(self):
        with pytest.raises(ValueError, match="equal keys"):
            mvd({0}, {1}, {2}).join(mvd({1}, {0}, {2}))

    def test_join_requires_same_cover(self):
        with pytest.raises(ValueError, match="cover"):
            mvd({0}, {1}, {2}).join(mvd({0}, {1}, {3}))

    def test_merge(self):
        m = mvd({0}, {1}, {2}, {3})
        merged = m.merge(0, 2)
        assert merged == mvd({0}, {1, 3}, {2})

    def test_merge_same_index_rejected(self):
        with pytest.raises(ValueError):
            mvd({0}, {1}, {2}, {3}).merge(1, 1)

    def test_merge_then_refines(self):
        m = mvd({0}, {1}, {2}, {3}, {4})
        assert m.strictly_refines(m.merge(0, 3))


class TestDunder:
    def test_sort_order_deterministic(self):
        ms = [mvd({1}, {0}, {2}), mvd({0}, {1}, {2}), mvd(set(), {0}, {1, 2})]
        ordered = sorted(ms)
        assert ordered[0].key == frozenset()
        assert ordered[-1].key == frozenset({1})

    def test_format_with_names(self):
        m = mvd({0, 3}, {2, 5}, {1, 4})
        assert m.format("ABCDEF") == "{A,D} ->> {B,E}|{C,F}"

    def test_format_without_names(self):
        assert mvd(set(), {0}, {1}).format() == "{} ->> {0}|{1}"

    def test_repr(self):
        assert "MVD" in repr(mvd({0}, {1}, {2}))

    def test_inequality_other_type(self):
        assert mvd({0}, {1}, {2}) != "not an mvd"
