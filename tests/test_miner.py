"""Tests for MVDMiner (phase 1)."""

import pytest

from repro.common import TOL
from repro.core.budget import SearchBudget
from repro.core.measures import j_measure
from repro.core.miner import MVDMiner, mine_mvds
from repro.reference import all_standard_mvds, full_mvds_with_key, minimal_separators
from tests.conftest import random_relation

A, B, C, D, E, F = range(6)


class TestMinerOnFig1:
    def test_all_outputs_hold(self, fig1, fig1_oracle):
        result = mine_mvds(fig1, 0.0)
        for phi in result.mvds:
            assert j_measure(fig1_oracle, phi) <= TOL

    def test_paper_support_mvds_derivable(self, fig1):
        """The three support MVDs of Example 3.2 must be coarsenings of
        mined full MVDs with the same key (Theorem 5.7 in action)."""
        from repro.core.mvd import MVD

        result = mine_mvds(fig1, 0.0)
        paper = [
            MVD({B, D}, [{E}, {A, C, F}]),
            MVD({A, D}, [{C, F}, {B, E}]),
            MVD({A}, [{F}, {B, C, D, E}]),
        ]
        for psi in paper:
            assert any(
                phi.key == psi.key and phi.refines(psi) for phi in result.mvds
            ), psi.format("ABCDEF")

    def test_minsep_counts(self, fig1):
        result = mine_mvds(fig1, 0.0)
        assert result.n_min_seps > 0
        assert result.pairs_done == result.pairs_total == 15
        assert not result.timed_out
        assert result.entropy_queries > 0
        assert "done" in result.summary()

    def test_full_mvds_equal_minseps_at_zero(self, fig1):
        """Appendix 14: at eps=0, #full MVDs == #minimal separators."""
        result = mine_mvds(fig1, 0.0)
        assert result.n_mvds == result.n_min_seps


class TestMinerCorrectness:
    @pytest.mark.parametrize("eps", [0.0, 0.2])
    def test_mined_equals_reference_union(self, eps):
        """M_eps == union over pairs/minimal separators of full MVDs."""
        r = random_relation(4, 14, seed=33)
        result = mine_mvds(r, eps)
        expected = set()
        for a in range(4):
            for b in range(a + 1, 4):
                for sep in minimal_separators(r, (a, b), eps):
                    expected |= set(full_mvds_with_key(r, sep, eps, pair=(a, b)))
        assert set(result.mvds) == expected

    def test_every_standard_mvd_implied(self, fig1, fig1_oracle):
        """Theorem 5.7: every exact standard MVD is derivable from M_0 —
        at eps=0 this reduces to: some mined MVD with key contained in the
        standard MVD's key refines/implies it.  We verify the weaker,
        checkable consequence: the miner finds MVDs for every separable
        pair that some exact standard MVD separates."""
        result = mine_mvds(fig1, 0.0)
        standard = all_standard_mvds(fig1, 0.0)
        separated_pairs = {
            (a, b)
            for phi in standard
            for a in range(6)
            for b in range(a + 1, 6)
            if phi.separates(a, b)
        }
        mined_pairs = {
            (a, b)
            for phi in result.mvds
            for a in range(6)
            for b in range(a + 1, 6)
            if phi.separates(a, b)
        }
        assert separated_pairs == mined_pairs


class TestMinerModes:
    def test_source_types(self, fig1, fig1_oracle):
        assert MVDMiner(fig1).mine(0.0).n_mvds == MVDMiner(fig1_oracle).mine(0.0).n_mvds
        with pytest.raises(TypeError):
            MVDMiner(42)

    def test_negative_eps_rejected(self, fig1):
        with pytest.raises(ValueError):
            MVDMiner(fig1).mine(-0.1)

    def test_restricted_pairs(self, fig1):
        result = MVDMiner(fig1).mine(0.0, pairs=[(A, F)])
        assert result.pairs_total == 1
        assert set(result.min_seps) == {(A, F)}

    def test_budget_timeout_flagged(self, fig1):
        budget = SearchBudget(max_steps=2).start()
        result = MVDMiner(fig1).mine(0.0, budget=budget)
        assert result.timed_out
        assert result.pairs_done < result.pairs_total
        assert "TIMEOUT" in result.summary()

    def test_unoptimized_agrees(self, fig1):
        opt = MVDMiner(fig1, optimized=True).mine(0.0)
        plain = MVDMiner(fig1, optimized=False).mine(0.0)
        assert set(opt.mvds) == set(plain.mvds)

    def test_naive_engine_agrees(self, fig1):
        pli = mine_mvds(fig1, 0.0, engine="pli")
        naive = mine_mvds(fig1, 0.0, engine="naive")
        assert set(pli.mvds) == set(naive.mvds)
