"""Smoke tests for the benchmark harness (tiny budgets)."""

import pytest

from repro.bench.harness import (
    Table,
    column_scalability,
    full_mvd_rates,
    quality_sweep,
    row_scalability,
    run_nursery_sweep,
    spurious_vs_j_buckets,
    table2_row,
)
from repro.data.generators import markov_tree


@pytest.fixture(scope="module")
def small_relation():
    return markov_tree(5, 300, seed=41, name="harness-test")


class TestTable:
    def test_render(self):
        t = Table("Demo", ["a", "b"])
        t.add({"a": 1, "b": 2.5})
        t.add({"a": None})
        text = t.render()
        assert "Demo" in text and "2.5" in text and "-" in text


class TestDrivers:
    def test_table2_row(self):
        row = table2_row("Bridges", scale=1.0, max_rows=100, max_cols=6,
                         time_limit_s=10.0)
        assert row["dataset"] == "Bridges"
        assert row["cols"] == 6
        assert row["rows"] <= 108
        assert isinstance(row["runtime_s"], float)

    def test_nursery_sweep_shape(self, small_relation):
        rows, pareto = run_nursery_sweep(
            small_relation, thresholds=(0.0, 0.2), schema_limit=5,
            schema_budget_s=5.0,
        )
        assert rows
        for r in rows:
            assert set(r) >= {"eps", "J", "S%", "E%", "m", "width"}
        assert all(0 <= i < len(rows) for i in pareto)

    def test_spurious_buckets(self, small_relation):
        rows = spurious_vs_j_buckets(
            small_relation, thresholds=(0.0, 0.2), schema_limit=5,
            schema_budget_s=5.0, n_buckets=4,
        )
        for r in rows:
            assert r["E%_q25"] <= r["E%_median"] <= r["E%_q75"] <= r["E%_max"]

    def test_row_scalability(self):
        rows = row_scalability(
            "Bridges", fractions=(0.5, 1.0), eps_values=(0.0,),
            base_rows=100, max_cols=6, time_limit_s=10.0,
        )
        assert len(rows) == 2
        assert rows[0]["rows"] <= rows[1]["rows"]

    def test_column_scalability(self):
        rows = column_scalability(
            "Bridges", col_counts=(4, 6), eps_values=(0.0,),
            max_rows=100, time_limit_s=10.0,
        )
        assert [r["cols"] for r in rows] == [4, 6]

    def test_quality_sweep(self, small_relation):
        rows = quality_sweep(
            small_relation, thresholds=(0.0, 0.2), schema_limit=10,
            schema_budget_s=5.0,
        )
        assert len(rows) == 2
        assert all("max_relations" in r for r in rows)

    def test_full_mvd_rates(self, small_relation):
        rows = full_mvd_rates(
            small_relation, thresholds=(0.0, 0.2), time_limit_s=5.0
        )
        assert len(rows) == 2
        zero = rows[0]
        # Appendix 14: at eps = 0, #full MVDs equals #minimal separators.
        if not zero["timed_out"]:
            assert zero["full_mvds"] == zero["min_seps"]
