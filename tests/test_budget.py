"""Tests for SearchBudget."""

import time


from repro.core.budget import SearchBudget, ensure_budget


class TestSearchBudget:
    def test_unlimited_never_exhausts(self):
        b = SearchBudget.unlimited()
        b.tick(10_000)
        assert not b.exhausted

    def test_step_limit(self):
        b = SearchBudget(max_steps=3).start()
        assert not b.exhausted
        b.tick(3)
        assert b.exhausted

    def test_time_limit(self):
        b = SearchBudget(max_seconds=0.01).start()
        time.sleep(0.02)
        assert b.exhausted

    def test_lazy_clock_start(self):
        b = SearchBudget(max_seconds=100)
        assert b.elapsed == 0.0
        assert not b.exhausted  # starts the clock
        assert b._start is not None

    def test_restart_resets(self):
        b = SearchBudget(max_steps=1).start()
        b.tick()
        assert b.exhausted
        b.start()
        assert not b.exhausted
        assert b.steps == 0

    def test_ensure_budget(self):
        assert ensure_budget(None).max_steps is None
        b = SearchBudget(max_steps=5)
        assert ensure_budget(b) is b

    def test_repr(self):
        assert "unlimited" in repr(SearchBudget())
        assert "steps" in repr(SearchBudget(max_steps=2))
        assert "5s" in repr(SearchBudget(max_seconds=5))
