"""Tests for getFullMVDs against exhaustive enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import TOL
from repro.core.budget import SearchBudget
from repro.core.fullmvd import (
    get_full_mvds,
    key_separates,
    neighbors,
    pairwise_consistent,
)
from repro.core.measures import j_measure
from repro.core.mvd import MVD
from repro.entropy.oracle import make_oracle
from repro.reference import full_mvds_with_key, separates as brute_separates
from tests.conftest import random_relation


class TestNeighbors:
    def test_counts_without_pair(self):
        m = MVD({0}, [{1}, {2}, {3}])
        assert len(neighbors(m)) == 3

    def test_pair_excluded(self):
        m = MVD({0}, [{1}, {2}, {3}])
        nbrs = neighbors(m, pair=(1, 2))
        # Merging {1} with {2} is forbidden; the other two merges stand.
        assert len(nbrs) == 2
        assert all(n.separates(1, 2) for n in nbrs)

    def test_standard_mvd_has_no_neighbors(self):
        assert neighbors(MVD({0}, [{1}, {2}])) == []


class TestPairwiseConsistent:
    def test_consistent_input_returned_unchanged(self, fig1_oracle):
        m = MVD({0, 3}, [{1}, {2}, {4}, {5}])  # AD ->> B|C|E|F holds exactly
        out = pairwise_consistent(fig1_oracle, m, eps=0.0)
        assert out == m

    def test_forced_merges_applied(self, lemma54_oracle):
        # In the 2-tuple example every pair among A,B,C is fully correlated.
        m = MVD({0}, [{1}, {2}, {3}])
        out = pairwise_consistent(lemma54_oracle, m, eps=0.5)
        assert out is None  # all merges forced; collapses to one dependent

    def test_pair_collision_returns_none(self, lemma54_oracle):
        m = MVD({0}, [{1}, {2}, {3}])
        assert pairwise_consistent(lemma54_oracle, m, eps=0.5, pair=(1, 2)) is None

    def test_eps_one_keeps_bipartitions(self, lemma54_oracle):
        m = MVD({0}, [{1}, {2}, {3}])
        out = pairwise_consistent(lemma54_oracle, m, eps=1.0, pair=(1, 2))
        # I(.|X) = 1 <= eps for every pair, so nothing is forced.
        assert out == m


class TestGetFullMVDs:
    def test_lemma54_full_set(self, lemma54_oracle):
        """Section 5.2: FullMVD_1(R, X) = the three bipartitions."""
        out = get_full_mvds(lemma54_oracle, {0}, eps=1.0)
        assert set(out) == {
            MVD({0}, [{1, 2}, {3}]),
            MVD({0}, [{1, 3}, {2}]),
            MVD({0}, [{2, 3}, {1}]),
        }

    def test_lemma54_eps2_single_full(self, lemma54_oracle):
        out = get_full_mvds(lemma54_oracle, {0}, eps=2.0)
        assert out == [MVD({0}, [{1}, {2}, {3}])]

    def test_exact_case_at_most_one_full_mvd(self, fig1_oracle):
        """Beeri: FullMVD_0(R, X) has at most one element."""
        for key in ({0}, {0, 3}, {1, 3}, {2}):
            out = get_full_mvds(fig1_oracle, key, eps=0.0)
            assert len(out) <= 1

    def test_fig1_ad_key(self, fig1_oracle):
        out = get_full_mvds(fig1_oracle, {0, 3}, eps=0.0)
        # AD ->> B|C|E|F holds exactly (B,C,E,F mutually independent given AD).
        assert out == [MVD({0, 3}, [{1}, {2}, {4}, {5}])]

    def test_limit_k(self, lemma54_oracle):
        out = get_full_mvds(lemma54_oracle, {0}, eps=1.0, limit=1)
        assert len(out) == 1

    def test_pair_filtering(self, lemma54_oracle):
        out = get_full_mvds(lemma54_oracle, {0}, eps=1.0, pair=(1, 2))
        assert all(m.separates(1, 2) for m in out)
        assert set(out) == {
            MVD({0}, [{1, 3}, {2}]),
            MVD({0}, [{2, 3}, {1}]),
        }

    def test_key_containing_pair_member(self, fig1_oracle):
        assert get_full_mvds(fig1_oracle, {1}, eps=0.0, pair=(1, 4)) == []

    def test_too_few_free_attrs(self, fig1_oracle):
        assert get_full_mvds(fig1_oracle, set(range(5)), eps=1.0) == []

    def test_budget_truncates(self, fig1_oracle):
        budget = SearchBudget(max_steps=1).start()
        out = get_full_mvds(fig1_oracle, {2}, eps=0.0, budget=budget, optimized=False)
        assert len(out) <= 1

    @pytest.mark.parametrize("optimized", [True, False])
    @pytest.mark.parametrize("eps", [0.0, 0.05, 0.2, 0.6])
    def test_matches_reference_enumeration(self, optimized, eps):
        """Outputs ε-hold, are mutually refinement-free, and every reference
        full MVD is found."""
        r = random_relation(5, 20, seed=71)
        o = make_oracle(r)
        key = frozenset({0})
        got = get_full_mvds(o, key, eps, optimized=optimized)
        expected = full_mvds_with_key(r, key, eps)
        assert set(got) == set(expected)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000), eps=st.sampled_from([0.0, 0.1, 0.4]))
    def test_property_vs_reference(self, seed, eps):
        r = random_relation(4, 15, seed=seed)
        o = make_oracle(r)
        key = frozenset({0})
        got = set(get_full_mvds(o, key, eps))
        expected = set(full_mvds_with_key(r, key, eps))
        assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000), eps=st.sampled_from([0.0, 0.15, 0.5]))
    def test_outputs_hold_and_are_full(self, seed, eps):
        r = random_relation(5, 18, seed=seed)
        o = make_oracle(r)
        out = get_full_mvds(o, frozenset({1}), eps)
        for phi in out:
            assert j_measure(o, phi) <= eps + TOL
        for i, a in enumerate(out):
            for j, b in enumerate(out):
                if i != j:
                    assert not a.strictly_refines(b)


class TestKeySeparates:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000), eps=st.sampled_from([0.0, 0.2]))
    def test_matches_brute_force(self, seed, eps):
        r = random_relation(4, 15, seed=seed)
        o = make_oracle(r)
        pair = (2, 3)
        for key in (frozenset(), frozenset({0}), frozenset({0, 1})):
            assert key_separates(o, key, pair, eps) == brute_separates(
                r, key, pair, eps
            )

    def test_pair_in_key_never_separates(self, fig1_oracle):
        assert not key_separates(fig1_oracle, {0, 1}, (1, 4), 1.0)
        assert not key_separates(fig1_oracle, {0}, (0, 4), 1.0)
        assert not key_separates(fig1_oracle, {0}, (4, 4), 1.0)
