"""Unit tests for the columnar relation engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.relation import Relation, _factorize, _factorize_object
from tests.conftest import random_relation


class TestFactorize:
    def test_first_appearance_order(self):
        codes, domain = _factorize(["b", "a", "b", "c"])
        assert list(codes) == [0, 1, 0, 2]
        assert domain == ["b", "a", "c"]

    def test_empty(self):
        codes, domain = _factorize([])
        assert len(codes) == 0
        assert domain == []

    def test_mixed_hashables(self):
        codes, domain = _factorize([1, "1", 1, (2,)])
        assert list(codes) == [0, 1, 0, 2]


class TestFactorizeVectorizedAgreement:
    """The np.unique fast path must agree with the reference dict walk.

    Agreement means identical codes AND identical domains — values *and*
    their Python types — so decoded relations are indistinguishable
    whichever path an input takes (ndarray/numeric inputs vectorise;
    strings, mixed and otherwise unrepresentable inputs fall back).
    """

    def _assert_agree(self, values):
        codes, domain = _factorize(values)
        ref_codes, ref_domain = _factorize_object(values)
        assert list(codes) == list(ref_codes)
        assert domain == ref_domain
        assert [type(v) for v in domain] == [type(v) for v in ref_domain]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.text(max_size=4)))
    def test_strings(self, values):
        self._assert_agree(values)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(-(2**62), 2**62)))
    def test_ints(self, values):
        self._assert_agree(values)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(allow_nan=False)))
    def test_floats(self, values):
        self._assert_agree(values)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.one_of(st.text(max_size=3), st.integers(0, 9),
                              st.booleans())))
    def test_mixed_type_columns_fall_back(self, values):
        self._assert_agree(values)

    def test_huge_ints_fall_back(self):
        self._assert_agree([10**30, 1, 10**30, 2])

    def test_nan_falls_back_to_identity_semantics(self):
        nan = float("nan")
        codes, domain = _factorize([nan, 1.0, nan])
        # Same NaN object: dict semantics give it one code.
        assert list(codes) == [0, 1, 0]

    def test_bool_vs_int_not_coerced(self):
        # numpy would collapse True and 1; the dict walk also treats them
        # equal (hash-equal) but keeps the first-seen *object* in the
        # domain — the fallback must preserve that.
        self._assert_agree([True, 1, 0, False])

    def test_ndarray_input_uses_fast_path(self):
        arr = np.array([3, 1, 3, 2])
        codes, domain = _factorize(arr)
        assert list(codes) == [0, 1, 0, 2]
        assert domain == [3, 1, 2]


class TestConstruction:
    def test_from_rows_roundtrip(self):
        rows = [("x", 1), ("y", 2), ("x", 2)]
        r = Relation.from_rows(rows, ["s", "n"])
        assert r.n_rows == 3
        assert r.n_cols == 2
        assert r.rows() == [("x", 1), ("y", 2), ("x", 2)]

    def test_from_columns(self):
        r = Relation.from_columns({"a": [1, 1, 2], "b": ["u", "v", "u"]})
        assert r.columns == ("a", "b")
        assert r.cardinality("a") == 2

    def test_from_columns_length_mismatch(self):
        with pytest.raises(ValueError, match="differing lengths"):
            Relation.from_columns({"a": [1], "b": [1, 2]})

    def test_from_rows_width_mismatch(self):
        with pytest.raises(ValueError, match="fields"):
            Relation.from_rows([(1, 2), (3,)], ["a", "b"])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Relation.from_rows([(1, 2)], ["a", "a"])

    def test_from_codes_densifies(self):
        codes = np.array([[5, 0], [7, 0], [5, 1]])
        r = Relation.from_codes(codes)
        assert r.cardinality(0) == 2
        assert r.cardinality(1) == 2
        assert set(r.row_set()) == {(0, 0), (1, 0), (0, 1)}

    def test_codes_must_be_2d(self):
        with pytest.raises(ValueError):
            Relation(np.zeros(3, dtype=np.int64), ["a"])

    def test_empty_relation(self):
        r = Relation.from_rows([], ["a", "b"])
        assert r.n_rows == 0
        assert r.n_cells == 0
        assert r.distinct_count([0, 1]) == 0


class TestColumnResolution:
    def test_by_name_and_index(self, fig1):
        assert fig1.col_index("A") == 0
        assert fig1.col_index(3) == 3
        assert fig1.col_indices(["D", "B"]) == (1, 3)

    def test_unknown_name(self, fig1):
        with pytest.raises(KeyError, match="unknown column"):
            fig1.col_index("Z")

    def test_index_out_of_range(self, fig1):
        with pytest.raises(IndexError):
            fig1.col_index(99)

    def test_single_attr_spec(self, fig1):
        assert fig1.col_indices("A") == (0,)
        assert fig1.col_indices(2) == (2,)

    def test_attr_names(self, fig1):
        assert fig1.attr_names([3, 0]) == ("A", "D")


class TestGrouping:
    def test_group_ids_single_column(self):
        r = Relation.from_rows([(1,), (2,), (1,)], ["a"])
        ids, n = r.group_ids([0])
        assert n == 2
        assert ids[0] == ids[2] != ids[1]

    def test_group_ids_multi_column(self, fig1):
        ids, n = fig1.group_ids(["A", "D"])
        # Fig 1 has AD values: (a1,d1),(a2,d1),(a2,d2),(a1,d2) - all distinct.
        assert n == 4

    def test_group_ids_empty_attrs(self, fig1):
        ids, n = fig1.group_ids([])
        assert n == 1
        assert (ids == 0).all()

    def test_group_sizes(self):
        r = Relation.from_rows([(1, 1), (1, 2), (1, 1)], ["a", "b"])
        sizes = sorted(r.group_sizes(["a", "b"]))
        assert sizes == [1, 2]

    def test_distinct_count_matches_set(self):
        r = random_relation(4, 60, seed=3)
        for attrs in ([0], [1, 3], [0, 1, 2, 3]):
            expected = len({tuple(row) for row in r.codes[:, attrs]})
            assert r.distinct_count(attrs) == expected

    def test_group_ids_overflow_safe(self):
        # Many columns with moderate cardinality would overflow naive
        # mixed-radix encoding; group_ids must re-densify.
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 1000, size=(200, 12))
        r = Relation.from_codes(codes)
        ids, n = r.group_ids(range(12))
        expected = len({tuple(row) for row in r.codes})
        assert n == expected


class TestRelationalOps:
    def test_project_dedups(self, fig1):
        p = fig1.project(["A", "F"])
        assert p.n_rows == 2  # (a1,f1), (a2,f2)
        assert p.columns == ("A", "F")

    def test_project_no_dedup(self, fig1):
        p = fig1.project(["A"], dedup=False)
        assert p.n_rows == fig1.n_rows

    def test_distinct(self):
        r = Relation.from_rows([(1, 2), (1, 2), (3, 4)], ["a", "b"])
        assert r.distinct().n_rows == 2

    def test_take_rows(self, fig1):
        sub = fig1.take_rows([0, 2])
        assert sub.n_rows == 2
        assert sub.rows()[0] == fig1.rows()[0]
        assert sub.rows()[1] == fig1.rows()[2]

    def test_head(self, fig1):
        assert fig1.head(2).n_rows == 2
        assert fig1.head(100).n_rows == fig1.n_rows

    def test_sample_rows_deterministic(self):
        r = random_relation(3, 100, seed=1)
        s1 = r.sample_rows(10, seed=42)
        s2 = r.sample_rows(10, seed=42)
        assert s1.rows() == s2.rows()
        assert s1.n_rows == 10

    def test_sample_rows_all_copies(self):
        # k >= n_rows must return a full *copy*, never alias self: callers
        # (repro.approx's sampler cache) mutate/cache samples independently.
        r = random_relation(3, 10, seed=1)
        sample = r.sample_rows(100, seed=0)
        assert sample is not r
        assert sample.n_rows == r.n_rows
        assert (sample.codes == r.codes).all()
        assert sample.codes is not r.codes

    def test_sample_rows_seed_deterministic(self):
        r = random_relation(3, 200, seed=1)
        a = r.sample_rows(50, seed=9)
        b = r.sample_rows(50, seed=9)
        c = r.sample_rows(50, seed=10)
        assert (a.codes == b.codes).all()
        assert a.n_rows == c.n_rows == 50
        assert not (a.codes == c.codes).all()

    def test_rename(self, fig1):
        renamed = fig1.rename({"A": "alpha"})
        assert renamed.columns[0] == "alpha"
        assert renamed.columns[1:] == fig1.columns[1:]

    def test_column_values(self):
        r = Relation.from_rows([("x",), ("y",), ("x",)], ["c"])
        assert r.column_values("c") == ["x", "y", "x"]


class TestDunder:
    def test_len(self, fig1):
        assert len(fig1) == 4

    def test_equality_set_semantics(self):
        r1 = Relation.from_rows([(1, 2), (3, 4)], ["a", "b"])
        r2 = Relation.from_rows([(3, 4), (1, 2)], ["a", "b"])
        assert r1 == r2

    def test_inequality_different_columns(self):
        r1 = Relation.from_rows([(1,)], ["a"])
        r2 = Relation.from_rows([(1,)], ["b"])
        assert r1 != r2

    def test_not_hashable(self, fig1):
        with pytest.raises(TypeError):
            hash(fig1)

    def test_repr_and_pretty(self, fig1):
        assert "4x6" in repr(fig1)
        text = fig1.pretty(limit=2)
        assert "A" in text and "more rows" in text


class TestZeroColumnRows:
    def test_rows_of_zero_column_relation(self):
        import numpy as np

        r = Relation(np.empty((5, 0), dtype=np.int64), [])
        assert r.rows() == [()] * 5
        assert len(r.rows()) == r.n_rows


class TestNonDenseCardinality:
    """Regression: ``cardinality`` must count distinct values, not codes+1.

    Row subsetting (``take_rows``/``head``/``sample_rows``) keeps the
    original decode tables, so codes can be non-dense; ``max(code) + 1``
    then overcounts (user-visible in ``repro profile``'s distinct/H_norm
    columns).  The dense-radix bound stays internal to ``group_ids``.
    """

    def test_issue_example(self):
        r = Relation.from_rows(
            [(1, "a"), (2, "b"), (3, "a"), (4, "b")], ["id", "x"]
        ).take_rows([0, 3])
        assert r.cardinality("id") == 2  # was 4: codes {0, 3}, max+1
        assert r.cardinality("x") == 2

    def test_head_and_sample(self):
        r = Relation.from_rows([(i, i % 3) for i in range(9)], ["id", "m"])
        assert r.head(2).cardinality("id") == 2
        assert r.sample_rows(4, seed=1).cardinality("id") == 4

    def test_group_ids_unaffected(self):
        r = Relation.from_rows(
            [(1, "a"), (2, "b"), (3, "a"), (4, "b")], ["id", "x"]
        ).take_rows([0, 3])
        ids, n_groups = r.group_ids(["id", "x"])
        assert n_groups == 2
        assert r.distinct_count("x") == 2

    def test_matches_decoded_values(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=50, deadline=None)
        @given(
            rows=st.lists(
                st.tuples(st.integers(0, 9), st.integers(0, 4)),
                min_size=1,
                max_size=20,
            ),
            data=st.data(),
        )
        def check(rows, data):
            full = Relation.from_rows(rows, ["a", "b"])
            keep = data.draw(
                st.lists(
                    st.integers(0, full.n_rows - 1),
                    min_size=1,
                    max_size=full.n_rows,
                    unique=True,
                )
            )
            sub = full.take_rows(keep)
            for col in ("a", "b"):
                truth = len(set(sub.column_values(col)))
                assert sub.cardinality(col) == truth
                assert sub.distinct_count(col) == truth

        check()
