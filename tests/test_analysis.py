"""Tests for the repo-invariant static analyzer (repro.analysis).

Every rule gets a paired fixture set — one snippet it must flag, one it
must pass — plus pragma-suppression, pyproject-config, baseline and CLI
coverage.  The RPR001 regression fixture reproduces the *literal* pre-fix
PR 7 ``native._hash_count`` arithmetic (a bare uint64 Fibonacci constant
multiplied into an int64 key) that crashed the native tier at first JIT.
"""

import json
import os
import textwrap

from repro.analysis import (
    AnalysisConfig,
    collect_pragmas,
    load_config,
    make_rules,
    run_analysis,
    write_baseline,
)
from repro.analysis.config import _fallback_parse, read_tool_table
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_fixture(tmp_path, files, rules=None, **config_kwargs):
    """Write fixture files under tmp_path and analyze them."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    config = AnalysisConfig(root=str(tmp_path), paths=["."], **config_kwargs)
    return run_analysis(config, only_rules=rules)


def rules_seen(report):
    return sorted({f.rule for f in report.findings})


# --------------------------------------------------------------------- #
# RPR001 — numba dtype discipline
# --------------------------------------------------------------------- #

#: Verbatim reconstruction of the pre-fix PR 7 hash kernel: ``k`` is an
#: int64 array element and the bare Fibonacci constant exceeds int64, so
#: numba types it uint64 and the multiply promotes to float64.
PRE_FIX_HASH_COUNT = """
    import numpy as np
    from numba import njit

    @njit(cache=True)
    def _hash_count(keys):
        n = keys.shape[0]
        cap = 1
        while cap < 2 * n:
            cap <<= 1
        mask = cap - 1
        table_keys = np.empty(cap, dtype=np.int64)
        table_counts = np.zeros(cap, dtype=np.int64)
        used = np.zeros(cap, dtype=np.uint8)
        n_groups = 0
        for i in range(n):
            k = keys[i]
            h = (k * 0x9E3779B97F4A7C15) & mask
            while True:
                if used[h] == 0:
                    used[h] = 1
                    table_keys[h] = k
                    table_counts[h] = 1
                    n_groups += 1
                    break
                if table_keys[h] == k:
                    table_counts[h] += 1
                    break
                h = (h + 1) & mask
        out_keys = np.empty(n_groups, dtype=np.int64)
        out_counts = np.empty(n_groups, dtype=np.int64)
        j = 0
        for h in range(cap):
            if used[h]:
                out_keys[j] = table_keys[h]
                out_counts[j] = table_counts[h]
                j += 1
        return out_keys, out_counts
"""


class TestNumbaDtypeRule:
    def test_flags_pre_fix_hash_count(self, tmp_path):
        report = run_fixture(
            tmp_path, {"kernel.py": PRE_FIX_HASH_COUNT}, rules=["RPR001"]
        )
        assert [f.rule for f in report.findings] == ["RPR001"]
        finding = report.findings[0]
        # Anchored to the Fibonacci-multiply line, not somewhere nearby.
        source = textwrap.dedent(PRE_FIX_HASH_COUNT).splitlines()
        assert "0x9E3779B97F4A7C15" in source[finding.line - 1]
        assert "float64" in finding.message

    def test_flags_mixed_signed_unsigned(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "kernel.py": """
                import numpy as np
                from numba import njit

                @njit
                def mix(keys):
                    fib = np.uint64(11400714819323198485)
                    k = np.int64(keys[0])
                    return fib * k
                """
            },
            rules=["RPR001"],
        )
        assert rules_seen(report) == ["RPR001"]

    def test_passes_all_unsigned_fixed_shape(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "kernel.py": """
                import numpy as np
                from numba import njit

                @njit(cache=True)
                def fixed(keys):
                    fib = np.uint64(11400714819323198485)
                    umask = np.uint64(63)
                    h = np.int64((np.uint64(keys[0]) * fib) & umask)
                    used = np.zeros(64, dtype=np.uint8)
                    if used[h] == 0:
                        used[h] = 1
                    return h
                """
            },
            rules=["RPR001"],
        )
        assert report.ok, [f.format() for f in report.findings]

    def test_ignores_unjitted_functions(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "plain.py": """
                import numpy as np

                def mix(keys):
                    return np.uint64(3) * np.int64(keys[0])
                """
            },
            rules=["RPR001"],
        )
        assert report.ok

    def test_committed_native_kernel_is_clean(self):
        config = AnalysisConfig(
            root=REPO_ROOT, paths=["src/repro/kernels/native.py"]
        )
        report = run_analysis(config, only_rules=["RPR001"])
        assert report.ok, [f.format() for f in report.findings]


# --------------------------------------------------------------------- #
# RPR002 — serve lock discipline
# --------------------------------------------------------------------- #


class TestLockDisciplineRule:
    def test_flags_nested_blocking_and_guarded_return(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/serve/bad.py": """
                import threading
                import time

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._jobs_lock = threading.Lock()
                        self._entries = {}

                    def nested(self):
                        with self._lock:
                            with self._jobs_lock:
                                return len(self._entries)

                    def blocking(self, spec, relation):
                        with self._lock:
                            maimon = spec.make_maimon(relation)
                        return maimon

                    def sleepy(self):
                        with self._lock:
                            time.sleep(0.1)

                    def leaky(self, key):
                        with self._lock:
                            entry = self._entries[key]
                            return entry
                """
            },
            rules=["RPR002"],
        )
        assert len(report.findings) >= 4
        assert rules_seen(report) == ["RPR002"]
        messages = " ".join(f.message for f in report.findings)
        assert "while holding" in messages or "nested" in messages
        assert "make_maimon" in messages
        assert "time.sleep" in messages

    def test_passes_o1_critical_sections(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/serve/good.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._entries = {}

                    def snapshot(self):
                        with self._lock:
                            count = len(self._entries)
                        return count

                    def build(self, spec, relation):
                        maimon = spec.make_maimon(relation)
                        with self._lock:
                            self._entries[id(maimon)] = maimon
                        return maimon
                """
            },
            rules=["RPR002"],
        )
        assert report.ok, [f.format() for f in report.findings]

    def test_scoped_to_serve_by_default(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/core/elsewhere.py": """
                import threading

                class Thing:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._a_lock = threading.Lock()

                    def nested(self):
                        with self._lock:
                            with self._a_lock:
                                pass
                """
            },
            rules=["RPR002"],
        )
        assert report.ok

    def test_closure_body_not_attributed_to_lock_scope(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/serve/closure.py": """
                import threading
                import time

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def schedule(self):
                        with self._lock:
                            def later():
                                time.sleep(1.0)
                            self._pending = later
                """
            },
            rules=["RPR002"],
        )
        assert report.ok, [f.format() for f in report.findings]


# --------------------------------------------------------------------- #
# RPR003 — hot-path set discipline
# --------------------------------------------------------------------- #


class TestHotSetRule:
    def test_flags_per_call_frozenset_and_identity_setcomp(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/core/hot.py": """
                def probe(key, bags):
                    return frozenset(key) in bags

                class Box:
                    def __init__(self, bags):
                        self.bags = bags

                    def __eq__(self, other):
                        return {b.mask for b in self.bags} == {
                            b.mask for b in other.bags
                        }
                """
            },
            rules=["RPR003"],
        )
        # One per-call frozenset plus each of the two comprehensions in __eq__.
        assert len(report.findings) == 3
        assert rules_seen(report) == ["RPR003"]

    def test_passes_module_level_and_cold_paths(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                # Module-level constant in a hot dir: built once, allowed.
                "src/repro/core/cold.py": """
                KEYWORDS = frozenset({"mine", "schemas"})

                def probe(mask, masks):
                    return mask in masks
                """,
                # Per-call frozenset outside the hot dirs: out of scope.
                "src/repro/io.py": """
                def parse(text):
                    return frozenset(text.split(","))
                """,
            },
            rules=["RPR003"],
        )
        assert report.ok, [f.format() for f in report.findings]

    def test_paths_option_overrides_scope(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "lib/extra.py": """
                def probe(key, bags):
                    return frozenset(key) in bags
                """
            },
            rules=["RPR003"],
            rule_options={"rpr003": {"paths": ["lib"]}},
        )
        assert rules_seen(report) == ["RPR003"]


# --------------------------------------------------------------------- #
# RPR004 — spec/registry drift
# --------------------------------------------------------------------- #

_DRIFTING_SPEC = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class EngineSpec:
        eps: float = 0.1
        budget: int = 0

        def validate(self):
            check(self.eps)
            check(self.budget)

        def to_dict(self):
            return {"eps": self.eps}

        def from_dict(cls, data):
            return cls(eps=data["eps"], budget=data["budget"])
"""


class TestSpecDriftRule:
    def drift_files(self):
        return {
            "src/repro/api/specs.py": _DRIFTING_SPEC,
            "src/repro/api/envelope.py": """
                TASK_SPECS = {"mine": 1, "profile": 2}
            """,
            "src/repro/cli.py": """
                def build(sub):
                    sub.add_parser("mine")
            """,
            "src/repro/serve/server.py": """
                ROUTES = ["/mine"]
            """,
        }

    def test_flags_missing_field_and_registry_drift(self, tmp_path):
        report = run_fixture(tmp_path, self.drift_files(), rules=["RPR004"])
        messages = [f.message for f in report.findings]
        # budget dropped from to_dict; "profile" has no subcommand, no route.
        assert any("EngineSpec.budget" in m and "to_dict" in m for m in messages)
        assert any("'profile'" in m and "add_parser" in m for m in messages)
        assert any("'profile'" in m and "route" in m for m in messages)
        assert len(report.findings) == 3

    def test_passes_when_parity_restored(self, tmp_path):
        files = self.drift_files()
        files["src/repro/api/specs.py"] = _DRIFTING_SPEC.replace(
            '{"eps": self.eps}', '{"eps": self.eps, "budget": self.budget}'
        )
        files["src/repro/cli.py"] = """
            def build(sub):
                sub.add_parser("mine")
                sub.add_parser("profile")
        """
        files["src/repro/serve/server.py"] = """
            ROUTES = ["/mine", "/profile"]
        """
        report = run_fixture(tmp_path, files, rules=["RPR004"])
        assert report.ok, [f.format() for f in report.findings]

    def test_registry_parity_skipped_when_surface_missing(self, tmp_path):
        files = self.drift_files()
        del files["src/repro/serve/server.py"]
        report = run_fixture(tmp_path, files, rules=["RPR004"])
        # Spec-completeness still runs; registry parity needs all surfaces.
        assert [f.rule for f in report.findings] == ["RPR004"]
        assert "to_dict" in report.findings[0].message

    def test_real_registry_has_full_parity(self):
        """The committed tree's TASK_SPECS/CLI/routes stay in lockstep."""
        config = AnalysisConfig(
            root=REPO_ROOT,
            paths=[
                "src/repro/api/specs.py",
                "src/repro/api/envelope.py",
                "src/repro/cli.py",
                "src/repro/serve/server.py",
            ],
        )
        report = run_analysis(config, only_rules=["RPR004"])
        assert report.ok, [f.format() for f in report.findings]


# --------------------------------------------------------------------- #
# RPR005 — strict-parse discipline
# --------------------------------------------------------------------- #


class TestStrictParseRule:
    def test_flags_lax_request_parsing(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/api/handlers.py": """
                def parse(payload, text, run):
                    spurious = bool(payload.get("spurious"))
                    scale = float(payload.get("scale", 0.01))
                    run(payload["dataset"])
                    flag = bool(text)
                    return spurious, scale, flag
                """
            },
            rules=["RPR005"],
        )
        assert len(report.findings) == 4
        messages = " ".join(f.message for f in report.findings)
        assert "bool('false') is True" in messages

    def test_passes_strict_helpers_and_isinstance(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/api/handlers.py": """
                def parse(payload):
                    spurious = _bool_or_error(payload, "spurious", False)
                    scale = _float_or_error(payload, "scale", 0.01)
                    if not isinstance(payload.get("rows"), list):
                        raise ValueError("rows must be a list")
                    return spurious, scale
                """
            },
            rules=["RPR005"],
        )
        assert report.ok, [f.format() for f in report.findings]

    def test_scoped_to_request_paths(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/core/math.py": """
                def weight(data):
                    return float(data.get("scale", 1.0))
                """
            },
            rules=["RPR005"],
        )
        assert report.ok


# --------------------------------------------------------------------- #
# Pragmas
# --------------------------------------------------------------------- #


class TestPragmas:
    def test_trailing_pragma_suppresses(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/core/hot.py": """
                def probe(key, bags):
                    return frozenset(key) in bags  # repro: allow[RPR003] boundary probe
                """
            },
            rules=["RPR003"],
        )
        assert report.ok
        assert report.suppressed == 1

    def test_standalone_pragma_covers_next_line(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/core/hot.py": """
                def probe(key, bags):
                    # repro: allow[RPR003] built once per call by design
                    return frozenset(key) in bags
                """
            },
            rules=["RPR003"],
        )
        assert report.ok
        assert report.suppressed == 1

    def test_unused_pragma_reported_as_rpr000(self, tmp_path):
        files = {
            "src/repro/core/hot.py": """
            def probe(mask, masks):
                return mask in masks  # repro: allow[RPR003] stale waiver
            """
        }
        report = run_fixture(tmp_path, files, rules=["RPR003"])
        assert [f.rule for f in report.findings] == ["RPR000"]
        quiet = run_fixture(
            tmp_path, files, rules=["RPR003"], warn_unused_pragmas=False
        )
        assert quiet.ok

    def test_pragma_for_disabled_rule_not_condemned(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/core/hot.py": """
                def probe(mask, masks):
                    return mask in masks  # repro: allow[RPR002] other rule
                """
            },
            rules=["RPR003"],
        )
        assert report.ok

    def test_docstring_examples_are_not_pragmas(self):
        source = '"""Docs show `# repro: allow[RPR003] reason` inline."""\n'
        assert collect_pragmas(source) == []

    def test_multi_rule_pragma(self):
        pragmas = collect_pragmas("x = 1  # repro: allow[RPR002, RPR003] both\n")
        assert len(pragmas) == 1
        assert pragmas[0].rules == frozenset({"RPR002", "RPR003"})


# --------------------------------------------------------------------- #
# Config, baseline, runner plumbing
# --------------------------------------------------------------------- #

_PYPROJECT = """
    [project]
    name = "fixture"

    [tool.repro-analysis]
    paths = ["pkg"]  # trailing comment
    rules = ["RPR003"]
    warn_unused_pragmas = false

    [tool.repro-analysis.rpr003]
    paths = ["pkg/inner"]

    [tool.other]
    irrelevant = true
"""


class TestConfig:
    def test_load_config_reads_tool_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent(_PYPROJECT))
        config = load_config(str(tmp_path))
        assert config.paths == ["pkg"]
        assert config.rules == ["RPR003"]
        assert config.warn_unused_pragmas is False
        assert config.options_for("RPR003") == {"paths": ["pkg/inner"]}

    def test_fallback_parser_agrees_with_tomllib(self, tmp_path):
        text = textwrap.dedent(_PYPROJECT)
        path = tmp_path / "pyproject.toml"
        path.write_text(text)
        parsed = _fallback_parse(text)
        assert read_tool_table(str(path)) == parsed
        assert parsed["paths"] == ["pkg"]
        assert parsed["warn_unused_pragmas"] is False
        assert parsed["rpr003"] == {"paths": ["pkg/inner"]}

    def test_fallback_parser_on_real_pyproject(self):
        with open(os.path.join(REPO_ROOT, "pyproject.toml")) as fh:
            text = fh.read()
        parsed = _fallback_parse(text)
        assert parsed["paths"] == ["src"]
        assert parsed["warn_unused_pragmas"] is True

    def test_config_rules_narrow_the_run(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/core/hot.py": """
                def probe(key, bags):
                    return frozenset(key) in bags
                """
            },
        )
        assert rules_seen(report) == ["RPR003"]
        narrowed = AnalysisConfig(
            root=str(tmp_path), paths=["."], rules=["RPR001"]
        )
        assert run_analysis(narrowed).ok


class TestRunner:
    def test_syntax_error_reported_not_fatal(self, tmp_path):
        report = run_fixture(
            tmp_path,
            {
                "src/repro/core/broken.py": "def probe(:\n",
                "src/repro/core/hot.py": """
                def probe(key, bags):
                    return frozenset(key) in bags
                """,
            },
            rules=["RPR003"],
        )
        assert rules_seen(report) == ["RPR003", "RPR900"]

    def test_baseline_subtracts_known_findings(self, tmp_path):
        files = {
            "src/repro/core/hot.py": """
            def probe(key, bags):
                return frozenset(key) in bags
            """
        }
        report = run_fixture(tmp_path, files, rules=["RPR003"])
        assert len(report.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), report.findings)
        config = AnalysisConfig(
            root=str(tmp_path), paths=["."], baseline="baseline.json"
        )
        rerun = run_analysis(config, only_rules=["RPR003"])
        assert rerun.ok
        assert rerun.baselined == 1

    def test_every_rule_has_id_and_summary(self):
        rules = make_rules()
        assert len(rules) >= 5
        ids = [r.rule_id for r in rules]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        assert all(r.summary for r in rules)

    def test_committed_tree_checks_clean(self):
        """`repro check` over the real src/ tree: zero unbaselined findings."""
        config = load_config(REPO_ROOT)
        config.root = REPO_ROOT
        report = run_analysis(config)
        assert report.ok, [f.format() for f in report.findings]
        assert report.baselined == 0  # clean by fixes/pragmas, not baseline


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #


class TestCheckCommand:
    def fixture_root(self, tmp_path):
        path = tmp_path / "src" / "repro" / "core" / "hot.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "def probe(key, bags):\n    return frozenset(key) in bags\n"
        )
        return str(tmp_path)

    def test_check_exits_nonzero_on_findings(self, tmp_path, capsys):
        root = self.fixture_root(tmp_path)
        assert main(["check", "--root", root]) == 1
        out = capsys.readouterr().out
        assert "RPR003" in out
        assert "src/repro/core/hot.py:2:" in out

    def test_check_json_output(self, tmp_path, capsys):
        root = self.fixture_root(tmp_path)
        assert main(["check", "--root", root, "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["findings"][0]["rule"] == "RPR003"

    def test_check_rules_filter(self, tmp_path, capsys):
        root = self.fixture_root(tmp_path)
        assert main(["check", "--root", root, "--rules", "RPR001"]) == 0

    def test_check_write_baseline_then_clean(self, tmp_path, capsys):
        root = self.fixture_root(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        assert main(["check", "--root", root, "--write-baseline", baseline]) == 0
        capsys.readouterr()
        assert (
            main(["check", "--root", root, "--baseline", baseline]) == 0
        )

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
            assert rule_id in out

    def test_repo_self_check_via_cli(self, capsys):
        assert main(["check", "--root", REPO_ROOT]) == 0
