"""API-surface tests for the ``approx`` engine arm.

The engine itself (sampling, bounds, escalation) is covered by
``test_approx.py``; this module pins the *plumbing*: how the sampling
knobs flow through :class:`repro.api.specs.EngineSpec`,
:func:`repro.entropy.oracle.make_oracle`, the CLI flags, the serving
layer's session keying and :class:`repro.api.specs.DataSpec` sampling.
"""

import json

import pytest

from repro.api.specs import DataSpec, EngineSpec, SpecError
from repro.approx import ApproxEntropyEngine
from repro.approx.engine import (
    DEFAULT_CONFIDENCE,
    DEFAULT_SAMPLE_ROWS,
    DEFAULT_SAMPLE_SEED,
)
from repro.cli import build_parser, main
from repro.data.generators import paper_running_example
from repro.data.loaders import to_csv
from repro.entropy.estimators import EstimatedEntropyEngine
from repro.entropy.oracle import make_oracle


@pytest.fixture
def fig1_csv(tmp_path):
    path = str(tmp_path / "fig1.csv")
    to_csv(paper_running_example(), path)
    return path


# --------------------------------------------------------------------- #
# EngineSpec validation
# --------------------------------------------------------------------- #


class TestEngineSpecValidation:
    def test_approx_spec_validates(self):
        spec = EngineSpec(engine="approx", sample_rows=5000,
                          confidence=0.9, sample_seed=3,
                          estimator="miller_madow")
        assert spec.validate() is spec

    def test_approx_defaults_are_none(self):
        spec = EngineSpec(engine="approx").validate()
        assert spec.sample_rows is None
        assert spec.confidence is None
        assert spec.sample_seed is None

    @pytest.mark.parametrize("field,value", [
        ("sample_rows", 1000),
        ("confidence", 0.9),
        ("sample_seed", 1),
    ])
    @pytest.mark.parametrize("engine", ["pli", "naive", "sql", "estimated"])
    def test_sampling_knobs_rejected_for_non_approx(self, engine, field, value):
        spec = EngineSpec(engine=engine, **{field: value})
        with pytest.raises(SpecError) as exc:
            spec.validate()
        assert exc.value.field == field
        assert "approx" in str(exc.value)

    @pytest.mark.parametrize("engine", ["pli", "naive", "sql"])
    def test_estimator_rejected_for_exact_engines(self, engine):
        with pytest.raises(SpecError) as exc:
            EngineSpec(engine=engine, estimator="miller_madow").validate()
        assert exc.value.field == "estimator"

    @pytest.mark.parametrize("engine", ["estimated", "approx"])
    def test_estimator_allowed_for_estimating_engines(self, engine):
        EngineSpec(engine=engine, estimator="jackknife").validate()

    def test_unknown_estimator_rejected(self):
        with pytest.raises(SpecError) as exc:
            EngineSpec(engine="approx", estimator="banana").validate()
        assert exc.value.field == "estimator"

    @pytest.mark.parametrize("field,value", [
        ("sample_rows", 0),
        ("sample_rows", -1),
        ("sample_rows", 1.5),
        ("sample_rows", True),
        ("confidence", 0.0),
        ("confidence", 1.0),
        ("confidence", -0.5),
        ("confidence", True),
        ("sample_seed", -1),
        ("sample_seed", 2.5),
    ])
    def test_bad_knob_values_rejected(self, field, value):
        with pytest.raises(SpecError) as exc:
            EngineSpec(engine="approx", **{field: value}).validate()
        assert exc.value.field == field

    def test_workers_allowed_with_approx(self):
        # workers feed the exact escalation tier (a PLI oracle).
        EngineSpec(engine="approx", workers=2).validate()

    def test_workers_still_rejected_with_estimated(self):
        with pytest.raises(SpecError):
            EngineSpec(engine="estimated", workers=2).validate()

    def test_round_trip_preserves_sampling_knobs(self):
        spec = EngineSpec(engine="approx", sample_rows=777,
                          confidence=0.99, sample_seed=5)
        again = EngineSpec.from_json(spec.to_json())
        assert again == spec


class TestEngineSpecFromRequest:
    def test_coerces_numeric_strings(self):
        spec = EngineSpec.from_request({
            "engine": "approx",
            "sample_rows": "5000",
            "confidence": "0.9",
            "sample_seed": "2",
        })
        assert spec.sample_rows == 5000
        assert spec.confidence == 0.9
        assert spec.sample_seed == 2

    def test_rejects_bool_sample_rows(self):
        with pytest.raises(SpecError) as exc:
            EngineSpec.from_request({"engine": "approx", "sample_rows": True})
        assert exc.value.field == "sample_rows"

    def test_rejects_fractional_sample_rows(self):
        with pytest.raises(SpecError) as exc:
            EngineSpec.from_request({"engine": "approx", "sample_rows": 10.5})
        assert exc.value.field == "sample_rows"

    def test_knobs_for_wrong_engine_rejected_after_merge(self):
        with pytest.raises(SpecError) as exc:
            EngineSpec.from_request({"engine": "pli", "sample_rows": 100})
        assert exc.value.field == "sample_rows"


class TestEngineSpecProvenance:
    def test_approx_resolves_defaults(self):
        prov = EngineSpec(engine="approx").provenance()
        assert prov["sample_rows"] == DEFAULT_SAMPLE_ROWS
        assert prov["confidence"] == DEFAULT_CONFIDENCE
        assert prov["sample_seed"] == DEFAULT_SAMPLE_SEED
        assert prov["estimator"] == "mle"

    def test_approx_keeps_explicit_knobs(self):
        prov = EngineSpec(engine="approx", sample_rows=123,
                          confidence=0.8, sample_seed=9).provenance()
        assert prov["sample_rows"] == 123
        assert prov["confidence"] == 0.8
        assert prov["sample_seed"] == 9

    def test_exact_engines_omit_sampling_knobs(self):
        prov = EngineSpec(engine="pli").provenance()
        for key in ("estimator", "sample_rows", "confidence", "sample_seed"):
            assert key not in prov


# --------------------------------------------------------------------- #
# make_oracle dispatch
# --------------------------------------------------------------------- #


class TestMakeOracleDispatch:
    def test_estimated_arm(self):
        r = paper_running_example()
        oracle = make_oracle(r, engine="estimated", estimator="miller_madow")
        assert isinstance(oracle.engine, EstimatedEntropyEngine)
        assert oracle.engine.estimator == "miller_madow"

    def test_approx_arm(self):
        r = paper_running_example()
        oracle = make_oracle(r, engine="approx", sample_rows=4,
                             confidence=0.9, sample_seed=1)
        assert isinstance(oracle, ApproxEntropyEngine)
        assert oracle.relation is r

    def test_approx_arm_via_spec(self):
        r = paper_running_example()
        spec = EngineSpec(engine="approx", sample_rows=4)
        oracle = spec.make_oracle(r)
        assert isinstance(oracle, ApproxEntropyEngine)

    def test_sampling_knobs_with_pli_raise(self):
        r = paper_running_example()
        with pytest.raises(ValueError, match="sample_rows"):
            make_oracle(r, engine="pli", sample_rows=100)


# --------------------------------------------------------------------- #
# CLI flags -> spec
# --------------------------------------------------------------------- #


class TestCliFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args([
            "mine", "x.csv", "--engine", "approx",
            "--sample-rows", "5000", "--confidence", "0.9",
            "--sample-seed", "3", "--estimator", "miller_madow",
        ])
        from repro.cli import _engine_spec

        spec = _engine_spec(args)
        assert spec.engine == "approx"
        assert spec.sample_rows == 5000
        assert spec.confidence == 0.9
        assert spec.sample_seed == 3
        assert spec.estimator == "miller_madow"

    def test_dump_config_round_trip(self, fig1_csv, tmp_path):
        cfg = str(tmp_path / "job.json")
        assert main([
            "mine", fig1_csv, "--engine", "approx",
            "--sample-rows", "6", "--confidence", "0.9",
            "--dump-config", cfg,
        ]) == 0
        data = json.loads(open(cfg).read())
        engine = data["engine"]
        assert engine["engine"] == "approx"
        assert engine["sample_rows"] == 6
        assert engine["confidence"] == 0.9

    def test_mine_with_approx_engine_runs(self, fig1_csv, capsys):
        assert main([
            "mine", fig1_csv, "--eps", "0.0",
            "--engine", "approx", "--sample-rows", "6",
        ]) == 0
        out = capsys.readouterr().out
        assert "->>" in out

    def test_data_sample_flags(self, fig1_csv, capsys):
        assert main([
            "mine", fig1_csv, "--eps", "0.0", "--sample", "6", "--seed", "1",
        ]) == 0

    def test_approx_bench_help_lists_knobs(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["approx-bench", "--help"])
        out = capsys.readouterr().out
        assert "--sample-rows" in out and "--confidence" in out


# --------------------------------------------------------------------- #
# Serving layer: session keying
# --------------------------------------------------------------------- #


class TestSessionKeying:
    def test_session_key_distinguishes_sampling_knobs(self):
        from repro.serve.session import SessionCache

        base = EngineSpec(engine="approx")
        keys = {
            SessionCache._session_key("d", base),
            SessionCache._session_key("d", base.replace(sample_rows=100)),
            SessionCache._session_key("d", base.replace(confidence=0.9)),
            SessionCache._session_key("d", base.replace(sample_seed=1)),
            SessionCache._session_key(
                "d", base.replace(estimator="miller_madow")),
        }
        assert len(keys) == 5

    def test_session_key_stable_for_equal_specs(self):
        from repro.serve.session import SessionCache

        a = EngineSpec(engine="approx", sample_rows=100)
        b = EngineSpec(engine="approx", sample_rows=100)
        assert (SessionCache._session_key("d", a)
                == SessionCache._session_key("d", b))


# --------------------------------------------------------------------- #
# DataSpec sampling
# --------------------------------------------------------------------- #


class TestDataSpecSampling:
    def test_sample_validation(self):
        DataSpec(dataset="Bridges", sample=100, seed=2).validate()
        with pytest.raises(SpecError) as exc:
            DataSpec(dataset="Bridges", sample=0).validate()
        assert exc.value.field == "sample"
        with pytest.raises(SpecError) as exc:
            DataSpec(dataset="Bridges", seed=-1).validate()
        assert exc.value.field == "seed"

    def test_seed_without_sample_rejected(self):
        with pytest.raises(SpecError) as exc:
            DataSpec(dataset="Bridges", seed=3).validate()
        assert exc.value.field == "seed"

    def test_load_applies_sample(self, fig1_csv):
        full = DataSpec(csv=fig1_csv).load()
        sampled = DataSpec(csv=fig1_csv, sample=4, seed=1).load()
        assert sampled.n_rows == 4
        assert sampled.n_cols == full.n_cols

    def test_load_sample_deterministic(self, fig1_csv):
        a = DataSpec(csv=fig1_csv, sample=4, seed=1).load()
        b = DataSpec(csv=fig1_csv, sample=4, seed=1).load()
        assert a.rows() == b.rows()

    def test_load_sample_ge_rows_is_full(self, fig1_csv):
        full = DataSpec(csv=fig1_csv).load()
        sampled = DataSpec(csv=fig1_csv, sample=10_000, seed=0).load()
        assert sampled.n_rows == full.n_rows
