"""Tests for the declarative request API (:mod:`repro.api`).

Three layers of guarantees:

1. **Round-trips** — hypothesis property tests pin
   ``from_dict(to_dict(spec)) == spec`` (through a real JSON encode) for
   every spec and for the :class:`~repro.api.TaskRequest` envelope.
2. **Validation in one place** — engine/knob combos that used to be
   silently ignored now fail with clear, field-naming errors at every
   entry point (specs, ``Maimon``, ``make_oracle``, the serving layer's
   structured 400s, the CLI's ``SystemExit``).
3. **Golden parity** — the same spec executed through the library
   (``api.run``), the CLI (``--json``) and HTTP (``POST /<task>``)
   yields byte-identical artefacts (modulo the wall-clock field),
   stamped with the same resolved spec and relation fingerprint.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.api import (
    DataSpec,
    DiffSpec,
    EngineSpec,
    MineSpec,
    ProfileSpec,
    SchemasSpec,
    SpecError,
    TaskRequest,
)
from repro.cli import main
from repro.core.maimon import Maimon
from repro.data.generators import paper_running_example
from repro.data.loaders import to_csv


@pytest.fixture
def fig1_csv(tmp_path):
    path = str(tmp_path / "fig1.csv")
    to_csv(paper_running_example(), path)
    return path


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

_budgets = st.none() | st.floats(min_value=0, max_value=1e6, allow_nan=False)
_eps = st.floats(min_value=0, max_value=10, allow_nan=False)
_tops = st.integers(min_value=0, max_value=100)

engine_specs = st.builds(
    EngineSpec,
    engine=st.sampled_from(["pli", "naive", "sql"]),
    block_size=st.integers(min_value=1, max_value=64),
    workers=st.integers(min_value=1, max_value=16),
    persist=st.booleans(),
    cache_dir=st.none() | st.text(min_size=1, max_size=24),
    track_deltas=st.booleans(),
)

#: Engine specs that also pass validate() (for TaskRequest round-trips).
valid_engine_specs = st.builds(
    EngineSpec,
    workers=st.integers(min_value=1, max_value=16),
    persist=st.booleans(),
    block_size=st.integers(min_value=1, max_value=64),
).map(lambda s: s if s.persist else s.replace(cache_dir=None))

data_specs = st.one_of(
    st.builds(DataSpec, csv=st.text(min_size=1, max_size=40),
              max_rows=st.none() | st.integers(min_value=1, max_value=10**6)),
    st.builds(DataSpec, dataset=st.sampled_from(["Image", "Bridges", "Census"]),
              scale=st.floats(min_value=1e-3, max_value=2.0, allow_nan=False)),
)

mine_specs = st.builds(MineSpec, eps=_eps, budget=_budgets, top=_tops)
schemas_specs = st.builds(
    SchemasSpec, eps=_eps, budget=_budgets, top=_tops,
    objective=st.sampled_from(["balanced", "relations", "width", "savings"]),
    spurious=st.booleans(),
)
profile_specs = st.builds(
    ProfileSpec, fd_lhs=st.integers(min_value=1, max_value=6), budget=_budgets
)
diff_specs = st.builds(
    DiffSpec, top=_tops,
    tol=st.floats(min_value=0, max_value=1.0, allow_nan=False),
)


# --------------------------------------------------------------------- #
# Round-trips
# --------------------------------------------------------------------- #

class TestRoundTrips:
    @settings(max_examples=60)
    @given(spec=st.one_of(engine_specs, data_specs, mine_specs,
                          schemas_specs, profile_specs, diff_specs))
    def test_dict_roundtrip_through_json(self, spec):
        """from_dict(to_dict(spec)) == spec, across a real JSON encode."""
        wire = json.loads(json.dumps(spec.to_dict(), sort_keys=True))
        assert type(spec).from_dict(wire) == spec

    @settings(max_examples=60)
    @given(spec=st.one_of(engine_specs, mine_specs, schemas_specs,
                          profile_specs, diff_specs))
    def test_json_roundtrip(self, spec):
        assert type(spec).from_json(spec.to_json()) == spec

    @settings(max_examples=40)
    @given(
        engine=valid_engine_specs,
        task_and_spec=st.one_of(
            st.tuples(st.just("mine"), mine_specs),
            st.tuples(st.just("schemas"), schemas_specs),
            st.tuples(st.just("profile"), profile_specs),
        ),
        data=st.none() | data_specs,
    )
    def test_task_request_roundtrip(self, engine, task_and_spec, data):
        task, spec = task_and_spec
        request = TaskRequest(task=task, spec=spec, engine=engine, data=data)
        wire = json.loads(json.dumps(request.to_dict(), sort_keys=True))
        assert TaskRequest.from_dict(wire) == request

    def test_from_dict_defaults_missing_fields(self):
        assert MineSpec.from_dict({}) == MineSpec()
        assert EngineSpec.from_dict({"workers": 4}) == EngineSpec(workers=4)


# --------------------------------------------------------------------- #
# Validation — one place, clear errors, every entry point
# --------------------------------------------------------------------- #

class TestValidation:
    def test_workers_require_pli_engine(self):
        with pytest.raises(SpecError, match="workers"):
            EngineSpec(engine="sql", workers=4).validate()
        with pytest.raises(SpecError, match="workers"):
            EngineSpec(engine="naive", workers=2).validate()

    def test_cache_dir_requires_persist(self):
        with pytest.raises(SpecError, match="cache_dir"):
            EngineSpec(persist=False, cache_dir="/tmp/x").validate()
        EngineSpec(persist=True, cache_dir="/tmp/x").validate()

    def test_unknown_engine(self):
        with pytest.raises(SpecError, match="engine"):
            EngineSpec(engine="bogus").validate()

    def test_maimon_and_make_oracle_shims_validate(self, fig1):
        from repro.entropy.oracle import make_oracle

        with pytest.raises(SpecError, match="workers"):
            Maimon(fig1, engine="sql", workers=4)
        with pytest.raises(SpecError, match="workers"):
            make_oracle(fig1, engine="naive", workers=2)
        with pytest.raises(SpecError, match="cache_dir"):
            Maimon(fig1, persist=False, cache_dir="/tmp/x")

    def test_maimon_records_its_spec(self, fig1):
        maimon = Maimon(fig1, workers=1)
        assert maimon.spec == EngineSpec()
        maimon.close()

    def test_task_spec_field_errors(self):
        with pytest.raises(SpecError, match="eps"):
            MineSpec(eps=-1).validate()
        with pytest.raises(SpecError, match="budget"):
            MineSpec(budget=-5).validate()
        with pytest.raises(SpecError, match="objective"):
            SchemasSpec(objective="bogus").validate()
        with pytest.raises(SpecError, match="fd_lhs"):
            ProfileSpec(fd_lhs=0).validate()
        with pytest.raises(SpecError, match="csv"):
            DataSpec().validate()
        with pytest.raises(SpecError, match="csv"):
            DataSpec(csv="a.csv", dataset="Image").validate()

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpecError, match="epz"):
            MineSpec.from_dict({"epz": 0.1})
        with pytest.raises(SpecError, match="unknown field"):
            EngineSpec.from_dict({"enginez": "pli"})
        with pytest.raises(SpecError, match="task"):
            TaskRequest.from_dict({"task": "bogus"})

    def test_spec_error_names_the_field(self):
        with pytest.raises(SpecError) as err:
            EngineSpec(engine="sql", workers=4).validate()
        assert err.value.field == "workers"

    def test_serve_rejects_invalid_specs_structurally(self, fig1):
        """The serving layer turns SpecError into a structured 400."""
        from repro.serve import MiningService, ServiceError

        with MiningService() as service:
            ds = service.registry.add(fig1)
            for payload, field in [
                ({"engine": "sql", "workers": 4}, "workers"),
                ({"eps": -1}, "eps"),
                ({"workers": "abc"}, "workers"),
                ({"eps": True}, "eps"),       # bools never coerce to numbers
                ({"workers": 2.9}, "workers"),  # no silent truncation
            ]:
                with pytest.raises(ServiceError) as err:
                    service.submit_mine(
                        {"dataset_id": ds.dataset_id, **payload}
                    )
                assert err.value.status == 400
                assert err.value.extra["code"] == "invalid_spec"
                assert err.value.extra["field"] == field

    def test_serve_rejects_client_supplied_cache_dir(self, fig1, tmp_path):
        """cache_dir is server-owned: a remote client must not be able to
        point the service's cache writes at an arbitrary path."""
        from repro.serve import MiningService, ServiceError

        with MiningService() as service:
            ds = service.registry.add(fig1)
            with pytest.raises(ServiceError) as err:
                service.submit_mine({
                    "dataset_id": ds.dataset_id,
                    "persist": True,
                    "cache_dir": str(tmp_path / "attacker"),
                })
            assert err.value.status == 400
            assert err.value.extra["field"] == "cache_dir"

    def test_from_request_rejects_stringly_typed_persist(self):
        """bool('false') is True — strings must be rejected, not coerced
        into silently enabling server disk writes."""
        with pytest.raises(SpecError, match="persist"):
            EngineSpec.from_request({"persist": "false"})
        assert EngineSpec.from_request({"persist": False}).persist is False

    def test_cli_config_errors_are_clean(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["mine", "--config", str(tmp_path / "missing.json")])
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["mine", "--config", str(bad)])

    def test_cli_rejects_invalid_combo_with_clear_error(self, fig1_csv):
        with pytest.raises(SystemExit, match="workers"):
            main(["mine", fig1_csv, "--engine", "sql", "--workers", "4"])
        with pytest.raises(SystemExit, match="cache_dir"):
            main(["mine", fig1_csv, "--no-persist", "--cache-dir", "/tmp/x"])


# --------------------------------------------------------------------- #
# The runner + envelopes
# --------------------------------------------------------------------- #

class TestRunner:
    def test_run_resolves_data_spec(self, fig1_csv):
        request = TaskRequest(
            task="mine", spec=MineSpec(eps=0.0),
            engine=EngineSpec(),
            data=DataSpec(csv=fig1_csv),
        )
        result = api.run(request)
        assert result.task == "mine"
        assert result.payload["mvds"]
        assert result.payload["fingerprint"] == result.fingerprint
        assert result.payload["spec"] == request.provenance()
        assert result.counters["oracle.queries"] > 0
        assert result.raw.mvds  # the in-memory MinerResult rides along

    def test_result_envelope_to_dict(self, fig1):
        result = api.run(
            TaskRequest(task="profile", spec=ProfileSpec()), relation=fig1
        )
        wire = result.to_dict()
        assert wire["task"] == "profile"
        assert wire["payload"] == result.payload
        assert "raw" not in wire
        assert TaskRequest.from_dict(wire["request"]) == result.request

    def test_run_requires_some_data(self):
        with pytest.raises(SpecError, match="data"):
            api.run(TaskRequest(task="mine", spec=MineSpec()))

    def test_execute_task_rejects_mismatched_spec(self, fig1):
        with Maimon(fig1) as maimon:
            with pytest.raises(SpecError, match="MineSpec"):
                api.execute_task("mine", maimon, SchemasSpec())

    def test_provenance_excludes_content_irrelevant_knobs(self, fig1):
        request = TaskRequest(
            task="mine", spec=MineSpec(top=5),
            engine=EngineSpec(track_deltas=True, persist=True,
                              cache_dir="/somewhere/host/local"),
            data=DataSpec(csv="somewhere.csv"),
        )
        prov = request.provenance()
        assert "data" not in prov  # the fingerprint stands in for the input
        assert "track_deltas" not in prov["engine"]  # session-lifetime knob
        assert "cache_dir" not in prov["engine"]  # host-local path
        assert "persist" not in prov["engine"]  # caching knob, not content
        assert "top" not in prov["mine"]  # listing cap; artefact is full

    def test_identical_results_stamp_identically(self, fig1_csv, tmp_path):
        """Knobs that cannot change the artefact must not change the stamp.

        ``--top`` caps only the human listing and ``--cache-dir`` only
        locates the cache, so runs differing in them produce byte-identical
        artefacts (and ``repro diff`` stays quiet on them).
        """
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        assert main(["mine", fig1_csv, "--top", "5", "--no-persist",
                     "--json", a]) == 0
        assert main(["mine", fig1_csv, "--top", "20", "--no-persist",
                     "--json", b]) == 0
        assert _strip_clock(json.load(open(a))) == _strip_clock(json.load(open(b)))

        c, d = str(tmp_path / "c.json"), str(tmp_path / "d.json")
        assert main(["mine", fig1_csv, "--cache-dir",
                     str(tmp_path / "cache1"), "--json", c]) == 0
        assert main(["mine", fig1_csv, "--cache-dir",
                     str(tmp_path / "cache2"), "--json", d]) == 0
        assert _strip_clock(json.load(open(c))) == _strip_clock(json.load(open(d)))
        # persist on (c) vs off (a) likewise never changes the stamp
        assert _strip_clock(json.load(open(a))) == _strip_clock(json.load(open(c)))


# --------------------------------------------------------------------- #
# Golden three-way parity: library == CLI == HTTP, byte for byte
# --------------------------------------------------------------------- #

def _strip_clock(payload: dict) -> dict:
    out = dict(payload)
    out.pop("elapsed", None)
    return out


class TestGoldenParity:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        from repro.serve import MiningService, ServeClient, start_background

        csv_path = str(tmp_path_factory.mktemp("parity") / "fig1.csv")
        to_csv(paper_running_example(), csv_path)
        service = MiningService(max_request_seconds=60)
        server, _ = start_background(service)
        client = ServeClient(
            f"http://127.0.0.1:{server.server_port}", timeout=120
        )
        ds = client.upload_csv(path=csv_path)
        yield {"client": client, "dataset_id": ds["dataset_id"],
               "csv": csv_path}
        server.close()

    def _three_way(self, served, request, cli_args, tmp_path):
        """Run one request through all three front doors; return payloads."""
        lib = api.run(request.replace(data=DataSpec(csv=served["csv"]))
                      if request.data is None else request).payload
        out = str(tmp_path / "cli.json")
        assert main([*cli_args, "--json", out]) == 0
        with open(out) as f:
            cli = json.load(f)
        resp = served["client"].run_request(request, served["dataset_id"])
        assert resp["status"] == "done"
        return lib, cli, resp["result"]

    def test_schemas_three_way_byte_identical(self, served, tmp_path):
        spec = SchemasSpec(eps=0.0, top=3, objective="relations", budget=20.0)
        request = TaskRequest(task="schemas", spec=spec, engine=EngineSpec())
        lib, cli, http = self._three_way(
            served, request,
            ["schemas", served["csv"], "--eps", "0.0", "--top", "3",
             "--objective", "relations", "--budget", "20.0", "--no-persist"],
            tmp_path,
        )
        assert json.dumps(lib, sort_keys=True) == json.dumps(cli, sort_keys=True)
        assert json.dumps(lib, sort_keys=True) == json.dumps(http, sort_keys=True)
        assert lib["spec"]["task"] == "schemas"
        assert lib["fingerprint"] == served["dataset_id"]

    def test_mine_three_way_identical_modulo_clock(self, served, tmp_path):
        request = TaskRequest(task="mine", spec=MineSpec(eps=0.0))
        lib, cli, http = self._three_way(
            served, request,
            ["mine", served["csv"], "--eps", "0.0", "--no-persist"],
            tmp_path,
        )
        assert _strip_clock(lib) == _strip_clock(cli) == _strip_clock(http)

    def test_profile_three_way_byte_identical(self, served, tmp_path):
        request = TaskRequest(task="profile", spec=ProfileSpec())
        lib, cli, http = self._three_way(
            served, request,
            ["profile", served["csv"], "--no-persist"],
            tmp_path,
        )
        assert json.dumps(lib, sort_keys=True) == json.dumps(cli, sort_keys=True)
        assert json.dumps(lib, sort_keys=True) == json.dumps(http, sort_keys=True)


# --------------------------------------------------------------------- #
# CLI config round-trip (--dump-config / --config)
# --------------------------------------------------------------------- #

class TestConfigRoundTrip:
    def test_dump_then_run_matches_direct(self, fig1_csv, tmp_path):
        job = str(tmp_path / "job.json")
        flags = ["schemas", fig1_csv, "--eps", "0.0", "--top", "3",
                 "--objective", "relations", "--no-persist"]
        assert main([*flags, "--dump-config", job]) == 0
        request = TaskRequest.from_dict(json.load(open(job)))
        assert request.task == "schemas"
        assert request.spec.objective == "relations"
        assert request.data.csv == fig1_csv

        direct = str(tmp_path / "direct.json")
        assert main([*flags, "--json", direct]) == 0
        from_config = str(tmp_path / "from_config.json")
        assert main(["schemas", "--config", job, "--json", from_config]) == 0
        assert json.load(open(direct)) == json.load(open(from_config))

    def test_dump_config_does_not_run(self, fig1_csv, tmp_path, capsys):
        job = str(tmp_path / "job.json")
        assert main(["mine", fig1_csv, "--dump-config", job]) == 0
        out = capsys.readouterr().out
        assert "full MVDs" not in out  # no mining happened
        assert json.load(open(job))["task"] == "mine"

    def test_config_task_mismatch_is_an_error(self, fig1_csv, tmp_path):
        job = str(tmp_path / "job.json")
        assert main(["mine", fig1_csv, "--dump-config", job]) == 0
        with pytest.raises(SystemExit, match="mine"):
            main(["schemas", "--config", job])

    def test_config_conflicting_flags_are_an_error(self, fig1_csv, tmp_path):
        """--config replaces the request — flags alongside it would be
        silently ignored, so they are rejected loudly instead."""
        job = str(tmp_path / "job.json")
        assert main(["mine", fig1_csv, "--dump-config", job]) == 0
        with pytest.raises(SystemExit, match="eps"):
            main(["mine", "--config", job, "--eps", "0.5"])
        with pytest.raises(SystemExit, match="csv"):
            main(["mine", fig1_csv, "--config", job])
        # display-only flags still combine fine
        out = str(tmp_path / "out.json")
        assert main(["mine", "--config", job, "--json", out]) == 0


# --------------------------------------------------------------------- #
# repro diff surfaces spec mismatches
# --------------------------------------------------------------------- #

class TestDiffProvenance:
    def _artefact(self, csv, tmp_path, name, *extra):
        out = str(tmp_path / name)
        assert main(["mine", csv, "--no-persist", "--json", out, *extra]) == 0
        return out

    def test_same_spec_no_warning(self, fig1_csv, tmp_path, capsys):
        a = self._artefact(fig1_csv, tmp_path, "a.json")
        b = self._artefact(fig1_csv, tmp_path, "b.json")
        assert main(["diff", a, b]) == 0
        assert "WARNING" not in capsys.readouterr().out

    def test_spec_mismatch_is_surfaced(self, fig1_csv, tmp_path, capsys):
        from repro.delta.diffing import diff_payloads

        a = self._artefact(fig1_csv, tmp_path, "a.json", "--eps", "0.0")
        b = self._artefact(fig1_csv, tmp_path, "b.json", "--eps", "0.05")
        main(["diff", a, b])
        out = capsys.readouterr().out
        assert "WARNING" in out and "mine.eps" in out

        diff = diff_payloads(json.load(open(a)), json.load(open(b)))
        assert diff["provenance"]["spec"]["mine.eps"] == {
            "old": 0.0, "new": 0.05
        }

    def test_fingerprint_mismatch_is_surfaced(self, tmp_path, capsys):
        csv_a = str(tmp_path / "a.csv")
        csv_b = str(tmp_path / "b.csv")
        to_csv(paper_running_example(), csv_a)
        to_csv(paper_running_example(with_red_tuple=True), csv_b)
        a = self._artefact(csv_a, tmp_path, "a.json")
        b = self._artefact(csv_b, tmp_path, "b.json")
        assert main(["diff", a, b]) == 1  # results really differ too
        out = capsys.readouterr().out
        assert "fingerprint" in out

    def test_unstamped_artefacts_still_diff_quietly(self, fig1_csv, tmp_path):
        """Pre-provenance artefacts (no spec key) diff without warnings."""
        from repro.delta.diffing import diff_payloads

        a = json.load(open(self._artefact(fig1_csv, tmp_path, "a.json")))
        b = json.load(open(self._artefact(fig1_csv, tmp_path, "b.json")))
        for payload in (a, b):
            payload.pop("spec"), payload.pop("fingerprint")
        diff = diff_payloads(a, b)
        assert "provenance" not in diff
        assert not diff["changed"]
