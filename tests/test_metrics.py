"""Tests for storage savings and schema quality metrics."""

import pytest

from repro.core.schema import Schema
from repro.data.relation import Relation
from repro.quality.metrics import (
    evaluate_schema,
    pareto_front,
    schema_cells,
    storage_savings_pct,
)


def fs(*xs):
    return frozenset(xs)


class TestStorage:
    def test_schema_cells_fig1(self, fig1):
        s = Schema([fs(0, 5), fs(0, 1, 2, 3, 4)])
        # R[AF] has 2 distinct rows x 2 cols; R[ABCDE] has 4 x 5.
        assert schema_cells(fig1, s) == 2 * 2 + 4 * 5

    def test_savings_positive_when_projections_compress(self):
        # Column b depends only on a: projecting {a,b} and {a,c} saves cells.
        rows = [(i % 2, i % 2, i) for i in range(8)]
        r = Relation.from_rows(rows, ["a", "b", "c"])
        s = Schema([fs(0, 1), fs(0, 2)])
        assert storage_savings_pct(r, s) > 0

    def test_savings_negative_when_fragmenting_unique_data(self):
        # All columns jointly unique and interdependent: overlap costs cells.
        rows = [(i, i, i) for i in range(6)]
        r = Relation.from_rows(rows, ["a", "b", "c"])
        s = Schema([fs(0, 1), fs(1, 2)])
        assert storage_savings_pct(r, s) == pytest.approx(
            100.0 * (18 - (6 * 2 + 6 * 2)) / 18
        )

    def test_universal_schema_zero_savings(self, fig1):
        s = Schema([fs(*range(6))])
        assert storage_savings_pct(fig1, s) == pytest.approx(0.0)

    def test_empty_relation(self):
        import numpy as np

        r = Relation(np.zeros((0, 2), dtype=np.int64), ["a", "b"])
        assert storage_savings_pct(r, Schema([fs(0), fs(1)])) == 0.0


class TestEvaluateSchema:
    def test_full_profile(self, fig1, fig1_oracle):
        s = Schema([fs(0, 5), fs(0, 1, 2, 3, 4)])
        q = evaluate_schema(fig1, s, oracle=fig1_oracle)
        assert q.n_relations == 2
        assert q.width == 5
        assert q.intersection_width == 1
        assert q.j_measure == pytest.approx(0.0, abs=1e-9)
        assert q.spurious_pct == pytest.approx(0.0)
        row = q.row()
        assert row["m"] == 2 and row["E%"] == 0.0

    def test_without_spurious(self, fig1):
        s = Schema([fs(0, 5), fs(0, 1, 2, 3, 4)])
        q = evaluate_schema(fig1, s, with_spurious=False)
        assert q.spurious_pct is None
        assert q.row()["E%"] is None
        assert q.j_measure is None


class TestParetoFront:
    def test_simple_domination(self):
        # (savings, spurious): want max savings, min spurious; coincident
        # points keep a single representative (the first).
        points = [(50, 10), (60, 5), (40, 20), (60, 5)]
        front = pareto_front(points)
        assert set(front) == {1}

    def test_chain(self):
        points = [(10, 1), (20, 2), (30, 3)]
        assert set(pareto_front(points)) == {0, 1, 2}

    def test_single_point(self):
        assert pareto_front([(1, 1)]) == [0]

    def test_empty(self):
        assert pareto_front([]) == []
