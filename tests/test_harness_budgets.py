"""Regression tests for budget plumbing in the bench harness.

Guards the bug class found during Fig. 11 reproduction: a schema budget
whose clock starts before phase 1 runs is already exhausted when schema
enumeration begins, silently producing zero schemas at slow thresholds.
"""

import pytest

from repro.bench.harness import run_nursery_sweep, quality_sweep
from repro.core.budget import SearchBudget
from repro.core.maimon import Maimon
from repro.data.generators import markov_tree


@pytest.fixture(scope="module")
def relation():
    return markov_tree(5, 400, seed=61, name="budget-test")


class TestLazyBudgetStart:
    def test_budget_clock_starts_on_first_check(self):
        import time

        b = SearchBudget(max_seconds=0.05)
        time.sleep(0.06)  # elapsed before anyone checks
        assert not b.exhausted  # first check starts the clock
        time.sleep(0.06)
        assert b.exhausted

    def test_discover_schemas_with_slow_phase1(self, relation):
        """Even if phase 1 takes longer than the schema budget, phase 2
        still gets its full window."""
        maimon = Maimon(relation)
        # Unstarted schema budget: its window must begin at enumeration.
        schema_budget = SearchBudget(max_seconds=5.0)
        out = list(
            maimon.discover_schemas(
                0.1, limit=5, schema_budget=schema_budget, with_spurious=False
            )
        )
        assert out, "schema enumeration starved despite a fresh budget"


class TestSweepsProduceRows:
    def test_nursery_sweep_multiple_thresholds(self, relation):
        rows, pareto = run_nursery_sweep(
            relation,
            thresholds=(0.0, 0.1, 0.3),
            schema_limit=6,
            schema_budget_s=4.0,
            mvd_budget_s=10.0,
        )
        eps_seen = {r["eps"] for r in rows}
        # At least two thresholds contribute rows (no silent starvation).
        assert len(eps_seen) >= 2

    def test_quality_sweep_rows_per_threshold(self, relation):
        rows = quality_sweep(
            relation,
            thresholds=(0.0, 0.2),
            schema_limit=8,
            schema_budget_s=4.0,
            mvd_budget_s=10.0,
        )
        assert len(rows) == 2
        assert any(r["n_schemes"] > 0 for r in rows)

    def test_unbudgeted_sweep(self, relation):
        rows, __ = run_nursery_sweep(
            relation,
            thresholds=(0.1,),
            schema_limit=3,
            schema_budget_s=4.0,
            mvd_budget_s=None,
        )
        assert isinstance(rows, list)
