"""Tests for bias-corrected entropy estimators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.relation import Relation
from repro.entropy.estimators import (
    ESTIMATORS,
    EstimatedEntropyEngine,
    jackknife_entropy,
    miller_madow_entropy,
    mle_entropy,
)
from repro.entropy.naive import NaiveEntropyEngine
from tests.conftest import random_relation


class TestMle:
    def test_uniform(self):
        counts = np.array([2, 2, 2, 2])
        assert mle_entropy(counts, 8) == pytest.approx(2.0)

    def test_degenerate(self):
        assert mle_entropy(np.array([5]), 5) == 0.0
        assert mle_entropy(np.array([]), 0) == 0.0

    def test_matches_naive_engine(self):
        r = random_relation(3, 50, seed=4)
        naive = NaiveEntropyEngine(r)
        for attrs in ({0}, {1, 2}, {0, 1, 2}):
            counts = r.group_sizes(attrs)
            assert mle_entropy(counts, r.n_rows) == pytest.approx(
                naive.entropy_of(frozenset(attrs)), abs=1e-10
            )


class TestMillerMadow:
    def test_correction_size(self):
        counts = np.array([3, 3, 2])
        n = 8
        expected = mle_entropy(counts, n) + (3 - 1) / (2 * n * math.log(2))
        assert miller_madow_entropy(counts, n) == pytest.approx(expected)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 20), min_size=1, max_size=15))
    def test_always_at_least_mle(self, raw):
        counts = np.array(raw)
        n = int(counts.sum())
        assert miller_madow_entropy(counts, n) >= mle_entropy(counts, n)

    def test_reduces_bias_on_samples(self):
        """Average MM estimate across samples sits closer to the true
        entropy than the average MLE estimate (the bias story of N1)."""
        rng = np.random.default_rng(0)
        true_p = np.array([0.25] * 4 + [0.05] * 10 + [0.005] * 100)
        true_p = true_p / true_p.sum()
        true_h = -np.dot(true_p, np.log2(true_p))
        mle_estimates, mm_estimates = [], []
        for __ in range(40):
            sample = rng.choice(len(true_p), size=80, p=true_p)
            counts = np.bincount(sample, minlength=len(true_p))
            mle_estimates.append(mle_entropy(counts, 80))
            mm_estimates.append(miller_madow_entropy(counts, 80))
        mle_bias = abs(np.mean(mle_estimates) - true_h)
        mm_bias = abs(np.mean(mm_estimates) - true_h)
        assert np.mean(mle_estimates) < true_h  # plug-in biased downward
        assert mm_bias < mle_bias


class TestJackknife:
    def test_degenerate(self):
        assert jackknife_entropy(np.array([1]), 1) == 0.0
        assert jackknife_entropy(np.array([]), 0) == 0.0

    def test_uniform_large_sample_close_to_mle(self):
        counts = np.array([50, 50, 50, 50])
        h_jk = jackknife_entropy(counts, 200)
        assert h_jk == pytest.approx(2.0, abs=0.05)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(1, 12), min_size=2, max_size=12))
    def test_nonnegative_and_bias_direction(self, raw):
        counts = np.array(raw)
        n = int(counts.sum())
        h_jk = jackknife_entropy(counts, n)
        assert h_jk >= 0.0
        # Jackknife corrects the downward bias: >= MLE (standard property).
        assert h_jk >= mle_entropy(counts, n) - 1e-9


class TestEngine:
    def test_registry(self):
        assert set(ESTIMATORS) == {"mle", "miller_madow", "jackknife"}

    def test_unknown_estimator(self):
        r = random_relation(2, 10, seed=0)
        with pytest.raises(ValueError, match="unknown estimator"):
            EstimatedEntropyEngine(r, estimator="magic")

    def test_mle_engine_matches_naive(self):
        r = random_relation(3, 40, seed=8)
        est = EstimatedEntropyEngine(r, estimator="mle")
        naive = NaiveEntropyEngine(r)
        for attrs in ({0}, {0, 2}, {0, 1, 2}):
            assert est.entropy_of(frozenset(attrs)) == pytest.approx(
                naive.entropy_of(frozenset(attrs)), abs=1e-10
            )

    def test_corrected_engine_increases_entropies(self):
        r = random_relation(4, 30, seed=12)
        mm = EstimatedEntropyEngine(r, estimator="miller_madow")
        naive = NaiveEntropyEngine(r)
        attrs = frozenset({0, 1, 2, 3})
        assert mm.entropy_of(attrs) >= naive.entropy_of(attrs)

    def test_memoised(self):
        r = random_relation(2, 20, seed=3)
        eng = EstimatedEntropyEngine(r)
        assert eng.entropy_of(frozenset({0})) == eng.entropy_of(frozenset({0}))

    def test_empty(self):
        r = Relation(np.zeros((0, 2), dtype=np.int64), ["a", "b"])
        assert EstimatedEntropyEngine(r).entropy_of(frozenset({0})) == 0.0
