"""Tests for Yannakakis evaluation and the decomposed store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schema import Schema
from repro.data.relation import Relation
from repro.quality.spurious import join_row_count, materialized_join_rows
from repro.quality.yannakakis import (
    DecomposedBags,
    count_query,
    full_reducer,
    iter_join_rows,
    sum_query,
)
from repro.storage import DecomposedStore
from tests.conftest import random_relation

A, B, C, D, E, F = range(6)


def fs(*xs):
    return frozenset(xs)


FIG1_SCHEMA = Schema([fs(A, F), fs(A, C, D), fs(A, B, D), fs(B, D, E)])


class TestFullReducer:
    def test_consistent_input_unchanged(self, fig1):
        bags = DecomposedBags(fig1, FIG1_SCHEMA)
        before = [len(r) for r in bags.rows]
        full_reducer(bags)
        assert [len(r) for r in bags.rows] == before

    def test_dangling_tuples_removed(self):
        # Two bags sharing B; one B value dangles on each side.
        r = Relation.from_rows(
            [(0, 0, 0), (1, 1, 1), (2, 2, 2)], ["a", "b", "c"]
        )
        bags = DecomposedBags(r, Schema([fs(0, 1), fs(1, 2)]))
        # Manually inject a dangling tuple into bag 0.
        extra = np.array([[7, 9]])
        bags.rows[0] = np.vstack([bags.rows[0], extra])
        full_reducer(bags)
        assert len(bags.rows[0]) == 3  # dangling (7,9) gone

    def test_empty_bag_propagates(self):
        r = Relation.from_rows([(0, 0)], ["a", "b"])
        bags = DecomposedBags(r, Schema([fs(0), fs(1)]))
        bags.rows[1] = bags.rows[1][:0]  # empty one side
        full_reducer(bags)
        assert len(bags.rows[0]) == 0


class TestIterJoinRows:
    def test_fig1_join(self, fig1):
        bags = DecomposedBags(fig1, FIG1_SCHEMA)
        rows = set(iter_join_rows(bags))
        assert rows == materialized_join_rows(fig1, FIG1_SCHEMA)

    def test_fig1_red_includes_spurious(self, fig1_red):
        bags = DecomposedBags(fig1_red, FIG1_SCHEMA)
        rows = set(iter_join_rows(bags))
        assert len(rows) == 6
        assert fig1_red.row_set() < rows

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 3000))
    def test_matches_materialized_property(self, seed):
        r = random_relation(4, 15, seed=seed)
        schema = Schema([fs(0, 1), fs(1, 2), fs(2, 3)])
        bags = DecomposedBags(r, schema)
        assert set(iter_join_rows(bags)) == materialized_join_rows(r, schema)


class TestAggregates:
    def test_count_matches_join_row_count(self, fig1, fig1_red):
        for rel in (fig1, fig1_red):
            bags = DecomposedBags(rel, FIG1_SCHEMA)
            assert count_query(bags) == join_row_count(rel, FIG1_SCHEMA)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 3000))
    def test_sum_matches_enumeration(self, seed):
        r = random_relation(4, 15, seed=seed)
        schema = Schema([fs(0, 1, 2), fs(2, 3)])
        bags = DecomposedBags(r, schema)
        rows = list(iter_join_rows(DecomposedBags(r, schema)))
        for attr in range(4):
            expected = sum(row[attr] for row in rows)
            assert sum_query(bags, attr) == expected, f"attr {attr}"

    def test_sum_on_star_schema(self):
        r = Relation.from_rows(
            [(0, 1, 10), (0, 2, 10), (1, 3, 20)], ["k", "x", "v"]
        )
        schema = Schema([fs(0, 1), fs(0, 2)])
        bags = DecomposedBags(r, schema)
        rows = list(iter_join_rows(DecomposedBags(r, schema)))
        assert sum_query(bags, 2) == sum(row[2] for row in rows)


class TestDecomposedStore:
    def test_schema_validation(self, fig1):
        with pytest.raises(ValueError, match="cover"):
            DecomposedStore(fig1, Schema([fs(0, 1)]))
        cyclic = Schema([fs(0, 1), fs(1, 2), fs(0, 2), fs(3), fs(4), fs(5)])
        with pytest.raises(ValueError, match="acyclic"):
            DecomposedStore(fig1, cyclic)

    def test_membership(self, fig1):
        store = DecomposedStore(fig1, FIG1_SCHEMA)
        for row in fig1.codes:
            assert store.contains(row)
        assert not store.contains([9, 9, 9, 9, 9, 9])

    def test_membership_width_check(self, fig1):
        store = DecomposedStore(fig1, FIG1_SCHEMA)
        with pytest.raises(ValueError):
            store.contains([0, 0])

    def test_spurious_membership(self, fig1_red):
        """The spurious tuple is 'stored' — that is exactly the loss E."""
        store = DecomposedStore(fig1_red, FIG1_SCHEMA)
        # (a2,b2,c2,d2,e2,f2) decodes to codes via the column domains.
        codes = [
            fig1_red.domains[j].index(v)
            for j, v in enumerate(("a2", "b2", "c2", "d2", "e2", "f2"))
        ]
        assert store.contains(codes)
        assert store.spurious_count() == 1

    def test_counts_and_savings(self, fig1):
        store = DecomposedStore(fig1, FIG1_SCHEMA)
        assert store.count() == 4
        assert store.spurious_count() == 0
        assert store.stored_cells == sum(
            r.shape[0] * r.shape[1] for r in store.bags.rows
        )
        assert "DecomposedStore" in repr(store)

    def test_reconstruct_roundtrip(self, fig1):
        store = DecomposedStore(fig1, FIG1_SCHEMA)
        back = store.reconstruct()
        assert back.row_set() == fig1.row_set()
        assert back.columns == fig1.columns

    def test_sum_by_name(self):
        r = Relation.from_rows([(0, 5), (1, 7)], ["k", "v"])
        store = DecomposedStore(r, Schema([fs(0, 1)]))
        # Codes, not decoded values: v codes are 0 and 1.
        assert store.sum("v") == 1
