"""Tests for CSV ingestion."""

import io


from repro.data.loaders import from_csv, from_columns, from_rows, to_csv


CSV_BASIC = "a,b,c\n1,x,9\n2,y,8\n1,x,7\n"


class TestFromCsv:
    def test_stream_with_header(self):
        r = from_csv(io.StringIO(CSV_BASIC))
        assert r.columns == ("a", "b", "c")
        assert r.n_rows == 3
        assert r.rows()[0] == ("1", "x", "9")

    def test_no_header(self):
        r = from_csv(io.StringIO("1,2\n3,4\n"), has_header=False)
        assert r.columns == ("A0", "A1")
        assert r.n_rows == 2

    def test_max_rows(self):
        r = from_csv(io.StringIO(CSV_BASIC), max_rows=2)
        assert r.n_rows == 2

    def test_null_token(self):
        r = from_csv(io.StringIO("a,b\n1,\n2,x\n"), null_token="")
        assert r.rows()[0] == ("1", "<null>")

    def test_ragged_rows_padded(self):
        r = from_csv(io.StringIO("a,b,c\n1,2\n1,2,3,4\n"))
        assert r.n_rows == 2
        assert r.rows()[0] == ("1", "2", "<null>")
        assert r.rows()[1] == ("1", "2", "3")

    def test_custom_delimiter(self):
        r = from_csv(io.StringIO("a;b\n1;2\n"), delimiter=";")
        assert r.rows() == [("1", "2")]

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.csv")
        original = from_rows([(1, "u"), (2, "v")], ["n", "s"])
        to_csv(original, path)
        loaded = from_csv(path)
        assert loaded.columns == ("n", "s")
        assert loaded.rows() == [("1", "u"), ("2", "v")]
        assert loaded.name == "t.csv"

    def test_empty_file(self):
        r = from_csv(io.StringIO(""), has_header=False)
        assert r.n_rows == 0
        assert r.n_cols == 0


class TestConvenience:
    def test_from_rows(self):
        r = from_rows([(1,)], ["a"], name="x")
        assert r.name == "x"

    def test_from_columns(self):
        r = from_columns({"a": [1, 2]})
        assert r.n_rows == 2
