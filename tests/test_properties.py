"""Cross-cutting property tests for the theory the system rests on."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import TOL
from repro.core.asminer import ASMiner
from repro.core.compat import incompatibility_graph, pairwise_compatible
from repro.core.jointree import JoinTree
from repro.core.measures import j_measure, j_of_join_tree
from repro.core.miner import mine_mvds
from repro.entropy.oracle import make_oracle
from repro.hypergraph.gyo import check_running_intersection
from repro.hypergraph.mis import maximal_independent_sets
from repro.reference import brute_maximal_independent_sets
from tests.conftest import random_relation


def spanning_trees(m):
    """All labelled spanning trees on m nodes (tiny m only)."""
    nodes = list(range(m))
    all_edges = list(itertools.combinations(nodes, 2))
    for combo in itertools.combinations(all_edges, m - 1):
        parent = list(range(m))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        ok = True
        for u, v in combo:
            ru, rv = find(u), find(v)
            if ru == rv:
                ok = False
                break
            parent[ru] = rv
        if ok:
            yield list(combo)


class TestLeeTreeInvariance:
    """Lee: J(T) depends only on the schema, not the join tree."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_all_valid_trees_same_j(self, seed):
        r = random_relation(5, 20, seed=seed)
        o = make_oracle(r)
        bags = [frozenset({0, 1, 2}), frozenset({1, 2, 3}), frozenset({2, 4})]
        values = []
        for edges in spanning_trees(3):
            if check_running_intersection(bags, edges):
                values.append(j_of_join_tree(o, bags, edges))
        assert len(values) >= 2  # several valid join trees exist
        for v in values[1:]:
            assert v == pytest.approx(values[0], abs=1e-9)


class TestSupportBound:
    """Eq. (10): max_i J(phi_i) <= J(T) <= sum_i J(phi_i) over the support."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_bounds_hold(self, seed):
        r = random_relation(5, 18, seed=seed)
        o = make_oracle(r)
        tree = JoinTree.from_bags(
            [frozenset({0, 1}), frozenset({1, 2, 3}), frozenset({3, 4})]
        )
        j_tree = tree.j_measure(o)
        support_js = [j_measure(o, phi) for phi in tree.support()]
        assert j_tree <= sum(support_js) + TOL
        assert j_tree >= max(support_js) - TOL


class TestASMinerAgainstBruteForce:
    """The MIS-driven enumeration visits exactly the maximal pairwise-
    compatible subsets of M_eps."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 800), eps=st.sampled_from([0.0, 0.25]))
    def test_maximal_compatible_sets_match(self, seed, eps):
        r = random_relation(4, 12, seed=seed)
        mined = mine_mvds(r, eps).mvds
        if not mined or len(mined) > 10:
            return  # keep the brute force tractable
        adj = incompatibility_graph(mined)
        got = sorted(maximal_independent_sets(len(mined), adj), key=sorted)
        expected = sorted(brute_maximal_independent_sets(len(mined), adj), key=sorted)
        assert got == expected
        # Cross-check the semantics: every MIS is pairwise compatible and
        # cannot be extended.
        for mis in got:
            subset = [mined[v] for v in mis]
            assert pairwise_compatible(subset)
            for v in range(len(mined)):
                if v in mis:
                    continue
                assert not pairwise_compatible(subset + [mined[v]])


class TestSchemaCandidateInvariants:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_candidates_wellformed(self, seed):
        r = random_relation(4, 14, seed=seed)
        o = make_oracle(r)
        mined = mine_mvds(r, 0.2).mvds
        miner = ASMiner(mined, frozenset(range(4)))
        for cand in miner.enumerate(oracle=o, limit=10):
            schema = cand.schema
            assert schema.is_acyclic()
            assert schema.attributes == frozenset(range(4))
            # The constructed join tree is a valid join tree of the bags.
            assert check_running_intersection(
                list(cand.join_tree.bags), list(cand.join_tree.edges)
            )
            # Cor 5.2: J(S) <= (m-1) * eps.
            assert cand.j_measure <= (schema.m - 1) * 0.2 + 1e-6


class TestMinerMonotonicity:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_separable_pairs_monotone_in_eps(self, seed):
        """Raising eps can only make more pairs separable (Prop 5.1)."""
        r = random_relation(4, 14, seed=seed)
        small = mine_mvds(r, 0.0)
        large = mine_mvds(r, 0.4)
        sep_small = {p for p, seps in small.min_seps.items() if seps}
        sep_large = {p for p, seps in large.min_seps.items() if seps}
        assert sep_small <= sep_large


class TestDuplicatedColumnBehaviour:
    def test_copy_column_always_separable_from_nothing(self):
        """A duplicated column is determined by its twin: {twin} separates
        it from everything else."""
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, size=60)
        b = rng.integers(0, 3, size=60)
        codes = np.column_stack([a, a, b])
        from repro.data.relation import Relation

        r = Relation.from_codes(codes, ["a1", "a2", "b"])
        mined = mine_mvds(r, 0.0)
        # a2 is separated from b by key {a1} (H(a2 | a1) = 0).
        assert any(
            phi.key == frozenset({0}) and phi.separates(1, 2)
            for phi in mined.mvds
        )
