"""Cross-module integration tests: the whole pipeline on planted data."""

import pytest

from repro.common import TOL
from repro.core.maimon import Maimon
from repro.core.schema import Schema
from repro.data.generators import decomposable, markov_tree
from repro.entropy.oracle import make_oracle
from repro.quality.metrics import storage_savings_pct
from repro.quality.spurious import spurious_tuple_count, spurious_tuple_pct


class TestPlantedSchemaRecovery:
    """Plant an exact acyclic schema; Maimon must recover it (or a
    refinement) at eps = 0."""

    @pytest.mark.parametrize(
        "bag_specs",
        [
            [["A", "B"], ["B", "C"]],
            [["A", "B"], ["B", "C"], ["C", "D"]],
            [["A", "B", "C"], ["C", "D"], ["C", "E"]],
        ],
    )
    def test_recovery(self, bag_specs):
        r = decomposable(bag_specs, 500, seed=13, domain_size=5)
        planted = Schema([frozenset(r.col_indices(b)) for b in bag_specs])
        maimon = Maimon(r)
        discovered = maimon.discover(0.0)
        assert discovered, "no exact schema found for decomposable data"
        # Every discovered schema is exact and lossless.
        for ds in discovered:
            assert ds.j_measure <= 1e-6
            assert spurious_tuple_count(r, ds.schema) == 0
        # Some discovered schema decomposes at least as finely as planted.
        best_m = max(ds.schema.m for ds in discovered)
        assert best_m >= planted.m
        best_width = min(
            ds.schema.width for ds in discovered if ds.schema.m >= planted.m
        )
        assert best_width <= planted.width

    def test_planted_j_zero(self):
        bag_specs = [["A", "B"], ["B", "C"], ["C", "D"]]
        r = decomposable(bag_specs, 400, seed=21)
        planted = Schema([frozenset(r.col_indices(b)) for b in bag_specs])
        o = make_oracle(r)
        assert planted.j_measure(o) == pytest.approx(0.0, abs=TOL)


class TestNoiseAndApproximation:
    """Noise destroys exact schemas; raising eps wins them back (the
    paper's core thesis)."""

    def test_noise_kills_exact_discovery(self):
        bag_specs = [["A", "B"], ["B", "C"], ["C", "D"]]
        noisy = decomposable(bag_specs, 300, seed=5, noise_rows=80)
        maimon = Maimon(noisy)
        exact_best = max((ds.schema.m for ds in maimon.discover(0.0)), default=1)
        approx_best = max(ds.schema.m for ds in maimon.discover(0.6, limit=40))
        assert approx_best >= exact_best
        assert approx_best >= 2  # approximation recovers a real decomposition

    def test_eps_monotone_schema_j(self):
        """Discovered schemas at small eps have smaller J than the extra
        ones admitted at larger eps (weak sanity check of thresholds)."""
        r = markov_tree(5, 600, seed=17, fd_fraction=0.0, determinism=0.9)
        maimon = Maimon(r)
        js_small = [ds.j_measure for ds in maimon.discover(0.01, limit=20)]
        js_large = [ds.j_measure for ds in maimon.discover(0.3, limit=20)]
        if js_small and js_large:
            assert min(js_small) <= min(js_large) + 1e-9
            assert max(js_large) >= max(js_small) - 1e-9


class TestTradeoffShape:
    """The S/E trade-off of Section 8.1: more decomposition -> more savings
    and (weakly) more spurious tuples."""

    def test_markov_tree_tradeoff(self):
        r = markov_tree(6, 800, seed=23, fd_fraction=0.3, determinism=0.9)
        maimon = Maimon(r)
        rows = []
        for eps in (0.0, 0.1, 0.4):
            for ds in maimon.discover(eps, limit=15):
                rows.append(
                    (
                        ds.schema.m,
                        storage_savings_pct(r, ds.schema),
                        spurious_tuple_pct(r, ds.schema),
                    )
                )
        assert rows
        singles = [row for row in rows if row[0] == 1]
        for _m, s, e in singles:
            assert s == pytest.approx(0.0)
            assert e == pytest.approx(0.0)
        multis = [row for row in rows if row[0] >= 3]
        if multis:
            # Fragmented schemas on tree-structured data compress.
            assert max(s for _, s, __ in multis) > 0


class TestConsistencyAcrossEngines:
    def test_pipeline_engine_invariance(self):
        r = markov_tree(5, 300, seed=31)
        out_pli = {ds.schema for ds in Maimon(r, engine="pli").discover(0.05, limit=25)}
        out_naive = {
            ds.schema for ds in Maimon(r, engine="naive").discover(0.05, limit=25)
        }
        assert out_pli == out_naive

    def test_pipeline_optimization_invariance(self):
        r = markov_tree(5, 300, seed=37)
        out_opt = {
            ds.schema for ds in Maimon(r, optimized=True).discover(0.05, limit=25)
        }
        out_plain = {
            ds.schema for ds in Maimon(r, optimized=False).discover(0.05, limit=25)
        }
        assert out_opt == out_plain
