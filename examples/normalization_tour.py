#!/usr/bin/env python3
"""Normalization tour: BCNF vs 4NF vs Maimon's schema enumeration.

Three generations of decomposition machinery on the same data:

1. **BCNF** (Codd / Bernstein): split on functional dependencies only;
2. **4NF** (Fagin): split on multivalued dependencies — one decomposition;
3. **Maimon** (the paper): enumerate *all* maximal acyclic schemas
   synthesisable from the approximate MVDs, ranked by an objective.

The demo data is a small "course offerings" relation with layered
structure: an FD (course -> department), a pure MVD
(course ->> teacher | book), and noise in a grade attribute that only the
approximate machinery can see past.

Run:  python examples/normalization_tour.py
"""

import itertools

from repro import Maimon, Relation
from repro.core.normalize import fourNF_decompose
from repro.core.ranking import rank_schemas
from repro.fd.normalize import bcnf_decompose
from repro.quality.metrics import evaluate_schema


def course_relation(noise_rows: int = 2) -> Relation:
    """course -> dept (FD); course ->> teacher | book (MVD); plus noise."""
    courses = {
        "db": ("cs", ["kim", "lee"], ["ullman", "silberschatz"]),
        "ml": ("cs", ["ng"], ["bishop", "murphy", "esl"]),
        "alg": ("math", ["tar", "kle"], ["clrs"]),
        "top": ("math", ["mun"], ["munkres", "hatcher"]),
    }
    rows = []
    for course, (dept, teachers, books) in courses.items():
        for t, b in itertools.product(teachers, books):
            rows.append((course, dept, t, b))
    # Noise: a couple of rows with the "wrong" department.
    noisy = [("db", "math", "kim", "ullman"), ("ml", "math", "ng", "bishop")]
    rows.extend(noisy[:noise_rows])
    return Relation.from_rows(rows, ["course", "dept", "teacher", "book"],
                              name="courses")


def report(title: str, relation: Relation, schema, oracle=None) -> None:
    q = evaluate_schema(relation, schema, oracle=oracle)
    j = f" J={q.j_measure:.4f}" if q.j_measure is not None else ""
    print(
        f"{title}: {schema.format(relation.columns)}\n"
        f"   m={q.n_relations} width={q.width} "
        f"S={q.savings_pct:.1f}% E={q.spurious_pct:.1f}%{j}"
    )


def main() -> None:
    relation = course_relation()
    print(f"{relation.name}: {relation.n_rows} rows x {relation.n_cols} cols")
    print(relation.pretty(limit=8))
    print()

    maimon = Maimon(relation)
    oracle = maimon.oracle

    # 1. BCNF from exact FDs: the noise rows break course -> dept, so exact
    #    BCNF finds nothing to split; approximate FDs recover the split.
    report("BCNF (exact FDs)   ", relation, bcnf_decompose(relation), oracle)
    report("BCNF (g3 <= 0.1)   ", relation, bcnf_decompose(relation, error=0.1),
           oracle)
    print()

    # 2. 4NF from MVDs at two thresholds.
    report("4NF  (eps = 0)     ", relation, fourNF_decompose(relation, eps=0.0,
                                                             oracle=oracle), oracle)
    report("4NF  (eps = 0.25)  ", relation, fourNF_decompose(relation, eps=0.25,
                                                             oracle=oracle), oracle)
    print()

    # 3. Maimon: the whole space, ranked.
    print("Maimon enumeration at eps = 0.25, ranked (balanced objective):")
    for rs in rank_schemas(maimon, eps=0.25, k=5):
        report(f"   #{rs.rank} (score {rs.score:7.2f})", relation,
               rs.discovered.schema, oracle)

    print(
        "\nTakeaway: BCNF sees only the FD; 4NF additionally splits the\n"
        "teacher/book cross product but commits to a single schema; Maimon\n"
        "exposes the full trade-off space and lets the application choose."
    )


if __name__ == "__main__":
    main()
