"""Smoke-test the out-of-core store pipeline through the real CLI.

Generates a small CSV, ingests it into a columnar store directory with
``repro ingest``, mines it both ways — ``--store`` (out-of-core chunked
kernels) and straight from the CSV (classic in-memory path) — and
asserts the backend seam's whole contract:

* the ingest-time fingerprint equals the in-memory relation fingerprint
  (both artefacts carry it, so the comparison is end to end);
* the mined MVDs and minimal separators are identical between backends;
* ``repro ingest`` refuses to clobber an existing store without
  ``--force`` and reports a clean structured error for a missing CSV.

Used as the CI backends smoke step; exits non-zero on any failure.

Run with: ``PYTHONPATH=src python examples/ingest_smoke.py``
"""

import csv
import json
import os
import random
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

ROOT = os.path.join(os.path.dirname(__file__), "..")
ENV = {**os.environ, "PYTHONPATH": "src"}


def repro(*args, expect=0):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=ENV, cwd=ROOT,
    )
    if proc.returncode != expect:
        raise AssertionError(
            f"repro {' '.join(args)} exited {proc.returncode}, expected "
            f"{expect}\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="ingest-smoke-")
    csv_path = os.path.join(tmp, "data.csv")
    store = os.path.join(tmp, "data.store")

    rng = random.Random(11)
    with open(csv_path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["region", "product", "size", "rating"])
        for _ in range(3000):
            region = rng.choice(["north", "south", "east"])
            product = rng.choice(["ore", "grain", "cloth", "tools"])
            # size is a function of product: a real dependency to mine.
            size = {"ore": "XL", "grain": "L", "cloth": "M", "tools": "S"}[product]
            writer.writerow([region, product, size, rng.choice(["a", "b"])])

    # Ingest, with the trace so the per-chunk spans show in CI logs.
    out = repro("ingest", csv_path, "--out", store,
                "--chunk-rows", "512", "--trace").stdout
    assert "fingerprint" in out and "chunk" in out, out
    assert os.path.exists(os.path.join(store, "store.json")), "no manifest"

    # Re-ingest: refused without --force, clean replace with it.
    err = repro("ingest", csv_path, "--out", store, expect=1)
    assert "already exists" in str(err.stderr) + str(err.stdout), err.stderr
    repro("ingest", csv_path, "--out", store, "--force")
    missing = repro("ingest", os.path.join(tmp, "nope.csv"),
                    "--out", os.path.join(tmp, "x.store"), expect=1)
    assert "ingest failed" in missing.stderr, missing.stderr

    # Mine out-of-core and in-memory; artefacts must agree bit for bit.
    store_json = os.path.join(tmp, "store_mine.json")
    memory_json = os.path.join(tmp, "memory_mine.json")
    repro("mine", "--store", store, "--eps", "0.01", "--no-persist",
          "--json", store_json)
    repro("mine", csv_path, "--eps", "0.01", "--no-persist",
          "--json", memory_json)
    with open(store_json) as f:
        from_store = json.load(f)
    with open(memory_json) as f:
        from_memory = json.load(f)
    assert from_store["fingerprint"] == from_memory["fingerprint"], (
        from_store["fingerprint"], from_memory["fingerprint"])
    assert from_store["mvds"] == from_memory["mvds"]
    assert from_store["min_seps"] == from_memory["min_seps"]
    assert from_store["mvds"], "expected at least the planted product->size MVD"

    print("ingest smoke OK:", len(from_store["mvds"]), "MVDs,",
          "fingerprint", from_store["fingerprint"][:12],
          "identical across backends")
    return 0


if __name__ == "__main__":
    sys.exit(main())
