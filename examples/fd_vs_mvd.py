#!/usr/bin/env python3
"""FDs vs MVDs: why FD discovery is not enough for acyclic schemas.

The paper's introduction argues that discovering all functional
dependencies (the TANE/HyFD/Pyro line of work) is insufficient for
discovering acyclic schemas, because MVDs are strictly more general.  This
example makes that concrete:

* it builds a relation whose only structure is a *pure* MVD — a many-to-
  many association that is not functional in either direction;
* the TANE baseline finds no useful FDs, so FD-based normalisation (BCNF)
  cannot decompose the relation at all;
* Maimon discovers the MVD and the corresponding lossless 2-relation
  schema.

It then runs both miners on an FD-rich relation to show they agree where
FDs do exist (every FD X -> A yields the MVD X ->> A | rest).

Run:  python examples/fd_vs_mvd.py
"""

import itertools

from repro import Maimon, Relation
from repro.bench.harness import Table
from repro.data.generators import markov_tree
from repro.fd.tane import mine_fds
from repro.quality.metrics import evaluate_schema


def pure_mvd_relation() -> Relation:
    """Employee ->> Skill | Language: skills and languages vary freely.

    Every employee has a set of skills and a set of languages, and the
    relation stores their cross product — the textbook pure-MVD example
    (Fagin 1977).  No attribute functionally determines any other.
    """
    skills = {
        "ann": ["sql", "ml", "viz"],
        "bob": ["sql", "ops"],
        "eve": ["ml", "ops", "viz"],
        "joe": ["sql"],
    }
    langs = {
        "ann": ["en", "fr"],
        "bob": ["en", "de", "es"],
        "eve": ["en"],
        "joe": ["fr", "de"],
    }
    rows = [
        (emp, s, l)
        for emp in skills
        for s, l in itertools.product(skills[emp], langs[emp])
    ]
    return Relation.from_rows(rows, ["employee", "skill", "language"], name="emp")


def main() -> None:
    # ------------------------------------------------------------------ #
    # Part 1: pure MVD, no FDs.
    # ------------------------------------------------------------------ #
    relation = pure_mvd_relation()
    print(f"Pure-MVD relation: {relation.n_rows} rows x {relation.n_cols} cols")
    print(relation.pretty(limit=6))

    fds = mine_fds(relation)
    nontrivial = [fd for fd in fds if len(fd.lhs) < relation.n_cols - 1]
    print(f"\nTANE: {len(nontrivial)} non-trivial minimal FDs found:")
    for fd in nontrivial:
        print(f"   {fd.format(relation.columns)}")
    if not nontrivial:
        print("   (none - FD-based normalisation cannot decompose this table)")

    maimon = Maimon(relation)
    result = maimon.mine_mvds(0.0)
    print(f"\nMaimon phase 1: {result.summary()}")
    for phi in result.mvds:
        print(f"   full MVD: {phi.format(relation.columns)}")

    print("\nMaimon phase 2 (exact schemas):")
    for ds in maimon.discover(0.0):
        q = evaluate_schema(relation, ds.schema)
        print(
            f"   {ds.schema.format(relation.columns)}  "
            f"m={q.n_relations} S={q.savings_pct:.1f}% E={q.spurious_pct:.1f}%"
        )

    # ------------------------------------------------------------------ #
    # Part 2: FD-rich data - the miners agree where FDs exist.
    # ------------------------------------------------------------------ #
    print("\n--- FD-rich relation (Markov tree, all edges functional) ---")
    fd_rel = markov_tree(6, 500, seed=5, fd_fraction=1.0, name="fd-rich")
    fds = mine_fds(fd_rel)
    nontrivial = [fd for fd in fds if len(fd.lhs) <= 2]
    table = Table("TANE minimal FDs (lhs <= 2)", ["fd", "g3"])
    for fd in nontrivial[:12]:
        table.add({"fd": fd.format(fd_rel.columns), "g3": round(fd.error, 4)})
    table.show()

    maimon2 = Maimon(fd_rel)
    mined = maimon2.mine_mvds(0.0)
    print(f"Maimon on the same data: {mined.summary()}")
    best = max(maimon2.discover(0.0), key=lambda ds: ds.schema.m, default=None)
    if best is not None:
        q = evaluate_schema(fd_rel, best.schema)
        print(
            f"most decomposed exact schema: {best.schema.format(fd_rel.columns)}"
            f"  (m={q.n_relations}, S={q.savings_pct:.1f}%)"
        )
    print(
        "\nTakeaway: FDs imply MVDs (X -> A gives X ->> A | rest), so Maimon\n"
        "subsumes FD-driven decomposition - but the pure-MVD table above\n"
        "shows structure only an MVD miner can find."
    )


if __name__ == "__main__":
    main()
