"""Smoke-test the observability surface through the real CLI entry point.

Starts ``repro serve --slow-ms 0`` as a subprocess on a free port, runs a
couple of requests (one traced) and then asserts the full telemetry loop:

* ``GET /metrics`` serves Prometheus text and **every** registered family
  appears with its ``# HELP``/``# TYPE`` header — sample-less families
  included, so a missing family is a hard failure, not a silent gap;
* request counters, per-task latency histograms, the session-lock wait
  histogram and the ``--slow-ms`` slow-request counter all moved;
* job payloads carry ``queued_ms``/``running_ms`` and ``/healthz``
  reports session/dataset cache occupancy against capacity;
* a ``trace=true`` request embeds a span tree and is otherwise identical
  to the untraced artefact;
* the server's structured JSON request log (stderr-bound, captured from
  the child's combined output) carries request ids and slow markers.

Used as the CI obs smoke step; exits non-zero on any failure.

Run with: ``PYTHONPATH=src python examples/obs_smoke.py``
"""

import json
import os
import re
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ServeClient  # noqa: E402

CSV = """A,B,C,D
a1,b1,c1,d1
a1,b1,c2,d1
a2,b2,c1,d2
a2,b2,c2,d2
"""

TIMEOUT_S = 60

# Families the service registers up front; /metrics must expose each one
# even before it has samples (headers render eagerly by design).
EXPECTED_FAMILIES = (
    "repro_requests_total",
    "repro_request_queued_seconds",
    "repro_request_running_seconds",
    "repro_session_lock_wait_seconds",
    "repro_slow_requests_total",
    "repro_jobs",
    "repro_jobs_queue_depth",
    "repro_sessions",
    "repro_sessions_capacity",
    "repro_session_cache_events_total",
    "repro_datasets",
    "repro_datasets_capacity",
    "repro_dataset_evictions_total",
    "repro_uptime_seconds",
    "repro_store_bytes",
    "repro_session_counter",
)


def _metric_value(text: str, line_prefix: str) -> float:
    for line in text.splitlines():
        if line.startswith(line_prefix):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"no metric line starts with {line_prefix!r}")


def main() -> int:
    # -u: unbuffered child output — with a pipe the startup banner would
    # otherwise sit in a block buffer and the readline() below would hang.
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--no-persist", "--max-request-seconds", "30", "--slow-ms", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.join(os.path.dirname(__file__), ".."),
    )
    try:
        deadline = time.time() + TIMEOUT_S
        port = None
        while port is None:
            if proc.poll() is not None or time.time() > deadline:
                raise RuntimeError("server did not start")
            line = proc.stdout.readline()
            m = re.search(r"listening on http://[\d.]+:(\d+)", line)
            if m:
                port = int(m.group(1))

        client = ServeClient(f"http://127.0.0.1:{port}", timeout=TIMEOUT_S)
        for _ in range(100):
            try:
                assert client.healthz()["status"] == "ok"
                break
            except OSError:
                time.sleep(0.1)
        else:
            raise RuntimeError("healthz never came up")

        ds = client.upload_csv(text=CSV, name="obs-smoke")["dataset_id"]

        # One plain request, one traced: same artefact modulo the block.
        plain = client.mine(ds, eps=0.0)
        assert plain["status"] == "done", plain
        assert plain["queued_ms"] >= 0 and plain["running_ms"] >= 0, plain
        traced = client.mine(ds, eps=0.0, trace=True)
        assert traced["status"] == "done", traced
        block = dict(traced["result"]).pop("trace")
        assert block["name"] == "mine" and block["count"] == 1, block
        stripped = {k: v for k, v in traced["result"].items() if k != "trace"}
        assert json.dumps(stripped, sort_keys=True) == \
               json.dumps(plain["result"], sort_keys=True)

        # /metrics: Prometheus text, every registered family present.
        text = client.metrics()
        for family in EXPECTED_FAMILIES:
            assert f"# TYPE {family} " in text, f"family missing: {family}"
        assert _metric_value(
            text, 'repro_requests_total{task="mine",status="done"}') == 2
        assert _metric_value(
            text, "repro_session_lock_wait_seconds_count") == 2
        assert _metric_value(text, "repro_sessions ") == 1
        assert _metric_value(text, "repro_datasets ") == 1
        # --slow-ms 0 marks every request slow.
        assert _metric_value(
            text, 'repro_slow_requests_total{task="mine"}') == 2
        # Per-session mining counters republished as labelled series.
        assert 'counter="oracle.queries"' in text, "no session counter series"

        # /healthz occupancy against capacity.
        health = client.healthz()
        assert health["sessions"]["sessions"] == 1, health["sessions"]
        assert health["sessions"]["capacity"] >= 1, health["sessions"]
        assert health["registry"]["datasets"] == 1, health["registry"]
        assert health["registry"]["capacity"] >= 1, health["registry"]

        # Structured JSON request log on the server's stderr (merged into
        # stdout here): one "request" line per job, with request ids, and
        # "slow_request" markers from --slow-ms 0.
        proc.terminate()
        tail = proc.stdout.read()
        events = []
        for line in tail.splitlines():
            try:
                events.append(json.loads(line))
            except ValueError:
                continue  # banner / non-JSON noise
        requests = [e for e in events if e.get("event") == "request"]
        slow = [e for e in events if e.get("event") == "slow_request"]
        assert len(requests) == 2, events
        assert {plain["job_id"], traced["job_id"]} == \
               {e["request_id"] for e in requests}, requests
        assert all(e["task"] == "mine" and e["status"] == "done"
                   for e in requests), requests
        assert len(slow) == 2, events

        print("obs smoke OK:", len(EXPECTED_FAMILIES), "families,",
              len(requests), "request log lines,",
              f"{block['total_ms']:.3f} ms traced")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
