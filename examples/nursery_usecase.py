#!/usr/bin/env python3
"""The Nursery use case (Section 8.1 of the paper).

Reconstructs the Nursery dataset (full Cartesian product of 8 categorical
attributes + rule-based class = 12 960 rows), sweeps the threshold J from 0
upwards, and reports every discovered scheme's storage savings S and
spurious-tuple rate E, ending with the pareto-optimal schemes — the
reproduction of Figs. 10 and 11.

Run:  python examples/nursery_usecase.py [--fast]
"""

import argparse

from repro import Maimon, SearchBudget
from repro.bench.harness import Table
from repro.data.generators import nursery
from repro.quality.metrics import pareto_front


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="sample 2000 rows and fewer thresholds (seconds instead of minutes)",
    )
    args = parser.parse_args()

    relation = nursery()
    if args.fast:
        relation = relation.sample_rows(2000, seed=1)
    thresholds = (0.0, 0.05, 0.1, 0.2) if args.fast else (
        0.0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3,
    )
    print(f"Nursery: {relation.n_rows} rows x {relation.n_cols} cols "
          f"({relation.n_cells} cells)")

    maimon = Maimon(relation)
    rows = []
    seen = set()
    for eps in thresholds:
        budget = SearchBudget(max_seconds=8.0).start()
        for ds in maimon.discover_schemas(eps, limit=20, schema_budget=budget):
            if ds.schema in seen:
                continue
            seen.add(ds.schema)
            q = ds.quality
            rows.append(
                {
                    "eps": eps,
                    "J": round(ds.j_measure, 4),
                    "m": q.n_relations,
                    "width": q.width,
                    "S%": round(q.savings_pct, 2),
                    "E%": round(q.spurious_pct or 0.0, 2),
                    "schema": ds.schema.format(relation.columns),
                }
            )
        print(f"eps={eps:<5} -> {len(rows)} schemes so far")

    table = Table(
        f"All {len(rows)} discovered Nursery schemes (Fig. 11)",
        ["eps", "J", "m", "width", "S%", "E%"],
    )
    for r in sorted(rows, key=lambda r: r["J"]):
        table.add(r)
    table.show()

    front = pareto_front([(r["S%"], r["E%"]) for r in rows])
    table = Table(
        f"{len(front)} pareto-optimal schemes (Fig. 10)",
        ["J", "m", "width", "S%", "E%", "schema"],
    )
    for i in sorted(front, key=lambda i: rows[i]["J"]):
        table.add(rows[i])
    table.show()

    print(
        "Reading the trade-off: at J=0 Nursery admits no decomposition\n"
        "(the class attribute functionally depends on all eight inputs);\n"
        "as J grows, Maimon finds schemes with more relations and large\n"
        "cell savings at the cost of spurious tuples."
    )


if __name__ == "__main__":
    main()
