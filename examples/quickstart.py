#!/usr/bin/env python3
"""Quickstart: discover approximate acyclic schemas on the paper's example.

Walks through the full Maimon pipeline on the 6-attribute relation of
Fig. 1 of the paper (Kenig et al., SIGMOD 2020):

1. build a relation;
2. inspect entropies and J-measures;
3. mine full ε-MVDs (phase 1);
4. enumerate acyclic schemas (phase 2);
5. evaluate storage savings and spurious tuples.

Run:  python examples/quickstart.py
"""

from repro import MVD, JoinTree, Maimon, Relation, j_measure
from repro.quality.metrics import evaluate_schema


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The relation of Fig. 1 (with the red 5th tuple).
    # ------------------------------------------------------------------ #
    rows = [
        ("a1", "b1", "c1", "d1", "e1", "f1"),
        ("a2", "b2", "c1", "d1", "e2", "f2"),
        ("a2", "b2", "c2", "d2", "e3", "f2"),
        ("a1", "b2", "c1", "d2", "e3", "f1"),
        ("a1", "b2", "c1", "d2", "e2", "f1"),  # the "red" tuple
    ]
    relation = Relation.from_rows(rows, list("ABCDEF"), name="fig1+red")
    print("Input relation:")
    print(relation.pretty())

    # ------------------------------------------------------------------ #
    # 2. Entropies and the J-measure.
    # ------------------------------------------------------------------ #
    maimon = Maimon(relation)
    oracle = maimon.oracle
    A, B, C, D, E, F = range(6)
    print(f"\nH(Omega)        = {oracle.entropy(range(6)):.4f} bits")
    print(f"H(BDE)          = {oracle.entropy({B, D, E}):.4f} bits")

    phi = MVD({A}, [{F}, {B, C, D, E}])
    print(f"J(A ->> F|BCDE) = {j_measure(oracle, phi):.4f}  (holds exactly)")
    phi2 = MVD({B, D}, [{E}, {A, C, F}])
    print(f"J(BD ->> E|ACF) = {j_measure(oracle, phi2):.4f}  (broken by the red tuple)")

    # The paper's join tree and its J-measure.
    paper_tree = JoinTree.from_bags(
        [{A, F}, {A, C, D}, {A, B, D}, {B, D, E}]
    )
    print(f"J(paper tree)   = {paper_tree.j_measure(oracle):.4f}")

    # ------------------------------------------------------------------ #
    # 3 + 4. Mine MVDs and enumerate schemas at two thresholds.
    # ------------------------------------------------------------------ #
    for eps in (0.0, 0.35):
        result = maimon.mine_mvds(eps)
        print(f"\n=== eps = {eps} ===")
        print(f"phase 1: {result.summary()}")
        for phi in result.mvds[:6]:
            print(f"   full MVD: {phi.format(relation.columns)}")
        print("phase 2 schemas:")
        for ds in maimon.discover(eps, limit=5):
            print(f"   {ds.format(relation.columns)}")

    # ------------------------------------------------------------------ #
    # 5. Evaluate one schema in detail.
    # ------------------------------------------------------------------ #
    best = maimon.discover(0.35, limit=1)[0]
    quality = evaluate_schema(relation, best.schema, oracle=oracle)
    print("\nBest schema at eps=0.35:")
    print(f"   bags:          {best.schema.format(relation.columns)}")
    print(f"   join tree:     {best.join_tree.format(relation.columns)}")
    print(f"   J-measure:     {quality.j_measure:.4f}")
    print(f"   relations:     {quality.n_relations}")
    print(f"   width:         {quality.width}")
    print(f"   cell savings:  {quality.savings_pct:.1f}%")
    print(f"   spurious rows: {quality.spurious_pct:.1f}%")
    for part in best.schema.decompose(relation):
        print(f"\nR[{','.join(part.columns)}]:")
        print(part.pretty())


if __name__ == "__main__":
    main()
