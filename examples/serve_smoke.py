"""Smoke-test the serving layer through the real CLI entry point.

Starts ``repro serve`` as a subprocess on a free port, waits for
``/healthz``, uploads a small CSV, runs a mine request and asserts the
JSON payload — exactly the loop a user's first session would take.  Used
as the CI serve smoke step; exits non-zero on any failure.

Run with: ``PYTHONPATH=src python examples/serve_smoke.py``
"""

import os
import re
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ServeClient  # noqa: E402

CSV = """A,B,C,D,E,F
a1,b1,c1,d1,e1,f1
a1,b1,c2,d1,e1,f1
a1,b2,c1,d2,e2,f1
a2,b1,c1,d2,e3,f2
"""

TIMEOUT_S = 60


def main() -> int:
    # -u: unbuffered child stdout — with a pipe the startup banner would
    # otherwise sit in a block buffer and the readline() below would hang.
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--no-persist", "--max-request-seconds", "30"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.join(os.path.dirname(__file__), ".."),
    )
    try:
        # The CLI prints the bound port (port 0 picks a free one).
        deadline = time.time() + TIMEOUT_S
        port = None
        while port is None:
            if proc.poll() is not None or time.time() > deadline:
                raise RuntimeError("server did not start")
            line = proc.stdout.readline()
            m = re.search(r"listening on http://[\d.]+:(\d+)", line)
            if m:
                port = int(m.group(1))

        client = ServeClient(f"http://127.0.0.1:{port}", timeout=TIMEOUT_S)
        for _ in range(100):
            try:
                assert client.healthz()["status"] == "ok"
                break
            except OSError:
                time.sleep(0.1)
        else:
            raise RuntimeError("healthz never came up")

        ds = client.upload_csv(text=CSV, name="smoke")
        assert ds["rows"] == 4 and ds["cols"] == 6, ds

        resp = client.mine(ds["dataset_id"], eps=0.0)
        assert resp["status"] == "done", resp
        result = resp["result"]
        assert result["eps"] == 0.0 and result["mvds"], result
        assert all({"key", "dependents"} <= set(m) for m in result["mvds"])

        resp = client.schemas(ds["dataset_id"], eps=0.0, top=2)
        assert resp["status"] == "done" and resp["result"]["schemas"], resp

        # Evolve the dataset: append rows into the warm session, re-mine,
        # and assert the diff payload (the repro.delta serve path).
        resp = client.append_rows(
            ds["dataset_id"],
            [["a2", "b2", "c2", "d1", "e4", "f2"],
             ["a1", "b2", "c2", "d2", "e1", "f1"]],
            eps=0.0,
        )
        assert resp["status"] == "done", resp
        appended = resp["result"]
        assert appended["parent_id"] == ds["dataset_id"], appended
        assert appended["rows"] == 6, appended
        assert appended["delta"]["n_rows"] == 2, appended["delta"]
        assert appended["advance"]["warm_session"] is True, appended["advance"]
        diff = appended["diff"]
        assert diff is not None and diff["kind"] == "mine", diff
        assert {"added", "dropped", "n_common"} <= set(diff["mvds"]), diff
        assert {"added", "dropped", "n_common"} <= set(diff["min_seps"]), diff

        health = client.healthz()
        assert health["jobs"]["done"] == 3, health["jobs"]
        print("serve smoke OK:", len(result["mvds"]), "MVDs,",
              len(appended["result"]["mvds"]), "MVDs after append,",
              f"diff +{len(diff['mvds']['added'])}"
              f" -{len(diff['mvds']['dropped'])}")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
