#!/usr/bin/env python3
"""Schema explorer: decompose your own CSV (or a planted synthetic dataset).

Loads a CSV file (or, with no argument, generates a relation with a planted
acyclic schema plus noise), mines approximate MVDs at several thresholds and
prints the best schemas by a simple figure of merit combining decomposition
degree, storage savings, and spurious tuples.

Run:  python examples/schema_explorer.py [path/to/data.csv] [--eps 0.1]
"""

import argparse

from repro import Maimon, SearchBudget, from_csv
from repro.bench.harness import Table
from repro.data.generators import decomposable


def demo_relation():
    """Planted schema {AB, BC, CD, CE} with 15% noise rows."""
    return decomposable(
        [["A", "B"], ["B", "C"], ["C", "D"], ["C", "E"]],
        n_rows=2000,
        seed=7,
        domain_size=8,
        noise_rows=60,
        name="planted-demo",
    )


def score(ds) -> float:
    """Figure of merit: reward decomposition + savings, punish spurious."""
    q = ds.quality
    return q.n_relations * 10 + q.savings_pct - 0.5 * (q.spurious_pct or 0.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv", nargs="?", help="CSV file to profile")
    parser.add_argument("--eps", type=float, default=None,
                        help="single threshold (default: sweep)")
    parser.add_argument("--max-rows", type=int, default=50_000)
    parser.add_argument("--budget", type=float, default=10.0,
                        help="seconds per threshold")
    args = parser.parse_args()

    if args.csv:
        relation = from_csv(args.csv, max_rows=args.max_rows)
    else:
        relation = demo_relation()
        print("No CSV given - using a synthetic relation with a planted")
        print("acyclic schema {AB, BC, CD, CE} and 3% noise rows.\n")

    print(f"{relation.name}: {relation.n_rows} rows x {relation.n_cols} cols")
    maimon = Maimon(relation)
    thresholds = [args.eps] if args.eps is not None else [0.0, 0.01, 0.05, 0.1, 0.2]

    all_schemas = []
    for eps in thresholds:
        budget = SearchBudget(max_seconds=args.budget).start()
        mined = maimon.mine_mvds(eps)
        found = list(
            maimon.discover_schemas(eps, limit=25, schema_budget=budget)
        )
        print(f"eps={eps:<5} {mined.summary()}  -> {len(found)} schemas")
        all_schemas.extend(found)

    unique = {}
    for ds in all_schemas:
        unique.setdefault(ds.schema, ds)
    ranked = sorted(unique.values(), key=score, reverse=True)

    table = Table(
        "Top schemas by figure of merit (m*10 + S% - 0.5*E%)",
        ["rank", "J", "m", "width", "S%", "E%", "schema"],
    )
    for rank, ds in enumerate(ranked[:10], 1):
        q = ds.quality
        table.add(
            {
                "rank": rank,
                "J": round(ds.j_measure, 4),
                "m": q.n_relations,
                "width": q.width,
                "S%": round(q.savings_pct, 2),
                "E%": round(q.spurious_pct or 0.0, 2),
                "schema": ds.schema.format(relation.columns),
            }
        )
    table.show()

    if ranked:
        best = ranked[0]
        print("Decomposition of the top schema:")
        for part in best.schema.decompose(relation):
            print(f"  R[{','.join(part.columns)}]: "
                  f"{part.n_rows} rows x {part.n_cols} cols")


if __name__ == "__main__":
    main()
