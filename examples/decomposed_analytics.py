#!/usr/bin/env python3
"""Decomposed analytics: store a relation as its acyclic schema and query it.

The paper motivates acyclic schemas with storage savings and Yannakakis'
linear-time query evaluation.  This example closes that loop:

1. generate a sales-like relation with tree-shaped dependency structure;
2. discover a schema with Maimon and compare it with the Chow–Liu Markov
   tree (the graphical-model view of the same structure);
3. store the data decomposed (`DecomposedStore`), report the footprint;
4. answer count/sum/membership queries directly on the decomposition and
   validate them against the flat relation.

Run:  python examples/decomposed_analytics.py
"""

import numpy as np

from repro import Maimon, Relation
from repro.core.cimap import chow_liu_tree, tree_fit
from repro.core.ranking import rank_schemas
from repro.storage import DecomposedStore


def sales_relation(n_rows: int = 5000, seed: int = 3) -> Relation:
    """region -> country chain, store in country, product hierarchy."""
    rng = np.random.default_rng(seed)
    region = rng.integers(0, 4, size=n_rows)
    country_table = rng.integers(0, 8, size=4)
    country = country_table[region]  # region determines country block
    store = (country * 3 + rng.integers(0, 3, size=n_rows)) % 12
    category = rng.integers(0, 5, size=n_rows)
    product_table = rng.integers(0, 20, size=5)
    keep = rng.random(n_rows) < 0.9
    product = np.where(keep, product_table[category], rng.integers(0, 20, n_rows))
    units = rng.integers(1, 6, size=n_rows)
    codes = np.column_stack([region, country, store, category, product, units])
    return Relation.from_codes(
        codes, ["region", "country", "store", "category", "product", "units"],
        name="sales",
    )


def main() -> None:
    relation = sales_relation()
    print(f"{relation.name}: {relation.n_rows} rows x {relation.n_cols} cols "
          f"({relation.n_cells} cells)\n")

    maimon = Maimon(relation)

    # The graphical-model view: the Chow-Liu tree of the data.
    edges = chow_liu_tree(maimon.oracle)
    named = [(relation.columns[a], relation.columns[b]) for a, b in edges]
    print(f"Chow-Liu Markov tree: {named}")
    print(f"tree J-fit: {tree_fit(maimon.oracle, edges):.4f} "
          "(0 would mean the data factorises exactly over the tree)\n")

    # Maimon: ranked schemas at a modest threshold.
    eps = 0.05
    print(f"Maimon schemas at eps={eps} (ranked by balanced objective):")
    ranked = rank_schemas(maimon, eps, k=3)
    for rs in ranked:
        print(f"  #{rs.rank} {rs.discovered.format(relation.columns)}")
    best = ranked[0].discovered.schema

    # Store decomposed and query.
    store = DecomposedStore(relation, best)
    print(f"\nDecomposed store: {store!r}")
    print(f"  flat cells:   {relation.n_cells}")
    print(f"  stored cells: {store.stored_cells}  "
          f"(S = {store.savings_pct:.1f}%)")
    print(f"  join count:   {store.count()}  "
          f"(spurious: {store.spurious_count()})")

    # Aggregates on the decomposition vs the flat data (code-level sums).
    flat_rows = {tuple(int(v) for v in row) for row in relation.codes}
    units_idx = relation.col_index("units")
    flat_sum = sum(r[units_idx] for r in flat_rows)
    print(f"  sum(units codes) over join:  {store.sum('units')}")
    print(f"  sum(units codes) flat:       {flat_sum}  "
          "(differs exactly by the spurious rows' contribution)")

    # Membership: every original row is stored; random rows mostly are not.
    hits = sum(store.contains(row) for row in relation.codes[:200])
    rng = np.random.default_rng(0)
    random_rows = rng.integers(0, 3, size=(200, relation.n_cols))
    misses = sum(not store.contains(row) for row in random_rows)
    print(f"  membership: {hits}/200 original rows found, "
          f"{misses}/200 random rows correctly absent (most)")

    # Round-trip.
    back = store.reconstruct()
    print(f"  reconstruct(): {back.n_rows} rows "
          f"(original distinct: {relation.distinct_count(range(relation.n_cols))})")


if __name__ == "__main__":
    main()
